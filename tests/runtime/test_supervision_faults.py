"""The runner-level fault-injection harness, on real worker processes.

These tests pin the supervisor's recovery contract: whatever faults are
injected — raises, stalls past the timeout, hard ``os._exit`` worker
deaths — every job that completes is bit-identical per seed to a clean
serial run, failures carry structured records, and a checkpointed run
resumes by retrying exactly the quarantined jobs.

The full harness (worker kills under every start method) runs in the
nightly slow lane; the quick fork-based subset stays in tier 1.
"""

import multiprocessing

import pytest

from repro.runtime import (
    EnsembleCheckpoint,
    RunnerFaultPlan,
    FaultSpec,
    RetryPolicy,
    replica_jobs,
    run_ensemble,
)

START_METHODS = [
    method
    for method in ("fork", "spawn", "forkserver")
    if method in multiprocessing.get_all_start_methods()
]


def harness_jobs(replicas=6):
    """Cheap fast-engine chains with stable ids (replica-lam4-r<k>)."""
    return replica_jobs(n=15, lam=4.0, iterations=2000, replicas=replicas, seed=11)


def assert_bit_identical(clean, recovered):
    for c, r in zip(clean, recovered):
        assert c.job.job_id == r.job.job_id
        assert c.trace.points == r.trace.points
        assert c.accepted_moves == r.accepted_moves
        assert c.rejection_counts == r.rejection_counts


class TestTier1Subset:
    def test_raise_faults_recover_on_fork_workers(self):
        """In-process raises in two workers: retried, bit-identical."""
        jobs = harness_jobs(4)
        clean = run_ensemble(jobs)
        plan = RunnerFaultPlan.build(
            FaultSpec(jobs[0].job_id, 1, "raise"),
            FaultSpec(jobs[2].job_id, 1, "raise"),
        )
        recovered = run_ensemble(
            jobs,
            workers=2,
            start_method="fork",
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01, jitter=0.0),
            fault_plan=plan,
        )
        assert not recovered.failures
        assert_bit_identical(clean.results, recovered.results)
        assert [r.attempts for r in recovered.results] == [2, 1, 2, 1]

    def test_timeout_kills_stalled_worker_and_retries(self):
        """workers=1 with a timeout promotes to one supervised process."""
        jobs = harness_jobs(1)
        clean = run_ensemble(jobs)
        plan = RunnerFaultPlan.build(FaultSpec(jobs[0].job_id, 1, "stall", seconds=30.0))
        recovered = run_ensemble(
            jobs,
            workers=1,
            start_method="fork",
            retry=RetryPolicy(
                max_attempts=2, backoff_seconds=0.01, jitter=0.0, timeout_seconds=1.0
            ),
            fault_plan=plan,
        )
        assert not recovered.failures
        assert_bit_identical(clean.results, recovered.results)
        assert recovered.results[0].attempts == 2
        # The stalled attempt was killed at its deadline, not slept through.
        assert recovered.wall_seconds < 15.0


@pytest.mark.slow
class TestFullHarness:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_every_fault_kind_under_every_start_method(self, start_method):
        """Raise, stall-past-timeout and os._exit all recover; one job is doomed."""
        jobs = harness_jobs(6)
        clean = run_ensemble(jobs)
        doomed = jobs[3].job_id
        plan = RunnerFaultPlan.build(
            FaultSpec(jobs[0].job_id, 1, "raise"),
            FaultSpec(jobs[1].job_id, 1, "stall", seconds=60.0),
            FaultSpec(jobs[2].job_id, 1, "exit"),
            FaultSpec(doomed, 1, "raise"),
            FaultSpec(doomed, 2, "raise"),
            FaultSpec(doomed, 3, "raise"),
        )
        result = run_ensemble(
            jobs,
            workers=3,
            start_method=start_method,
            retry=RetryPolicy(
                max_attempts=3, backoff_seconds=0.01, jitter=0.0, timeout_seconds=5.0
            ),
            fault_plan=plan,
            failure_policy="quarantine",
        )
        assert result.failed_ids == [doomed]
        survivors = [job for job in jobs if job.job_id != doomed]
        assert [r.job.job_id for r in result.results] == [j.job_id for j in survivors]
        clean_by_id = {r.job.job_id: r for r in clean.results}
        assert_bit_identical(
            [clean_by_id[r.job.job_id] for r in result.results], result.results
        )
        attempts = {r.job.job_id: r.attempts for r in result.results}
        assert attempts[jobs[0].job_id] == 2  # raised once
        assert attempts[jobs[1].job_id] == 2  # killed at the timeout once
        assert attempts[jobs[2].job_id] == 2  # worker died once
        assert attempts[jobs[4].job_id] == 1
        assert attempts[jobs[5].job_id] == 1
        failure = result.failure_for(doomed)
        assert failure.attempts == 3
        assert failure.error_type == "InjectedFault"
        assert [e["error_type"] for e in failure.attempt_errors] == ["InjectedFault"] * 3
        assert "InjectedFault" in failure.traceback

    def test_crash_and_timeout_failures_carry_their_error_types(self):
        """Jobs that die the same way every attempt quarantine with the
        supervisor-side error, not a generic failure."""
        jobs = harness_jobs(3)
        plan = RunnerFaultPlan.build(
            FaultSpec(jobs[0].job_id, 1, "exit", exit_code=23),
            FaultSpec(jobs[0].job_id, 2, "exit", exit_code=23),
            FaultSpec(jobs[1].job_id, 1, "stall", seconds=60.0),
            FaultSpec(jobs[1].job_id, 2, "stall", seconds=60.0),
        )
        result = run_ensemble(
            jobs,
            workers=2,
            start_method="fork",
            retry=RetryPolicy(
                max_attempts=2, backoff_seconds=0.01, jitter=0.0, timeout_seconds=1.0
            ),
            fault_plan=plan,
            failure_policy="quarantine",
        )
        assert result.failed_ids == [jobs[0].job_id, jobs[1].job_id]
        crashed = result.failure_for(jobs[0].job_id)
        assert crashed.error_type == "WorkerCrashed"
        assert "exitcode 23" in crashed.message
        assert crashed.attempts == 2
        timed_out = result.failure_for(jobs[1].job_id)
        assert timed_out.error_type == "JobTimeout"
        assert "1s wall-clock timeout" in timed_out.message
        assert timed_out.attempts == 2
        assert timed_out.wall_seconds >= 1.5  # two attempts, each ~timeout long
        # The untouched job completed normally alongside the carnage.
        assert [r.job.job_id for r in result.results] == [jobs[2].job_id]
        assert result.results[0].attempts == 1

    def test_checkpointed_quarantine_resumes_across_processes(self, tmp_path):
        """Quarantine docs written by a parallel run drive the resume."""
        jobs = harness_jobs(4)
        doomed = jobs[1].job_id
        plan = RunnerFaultPlan.build(
            FaultSpec(doomed, 1, "exit"), FaultSpec(doomed, 2, "exit")
        )
        retry = RetryPolicy(max_attempts=2, backoff_seconds=0.01, jitter=0.0,
                            timeout_seconds=10.0)
        first = run_ensemble(
            jobs,
            workers=2,
            start_method="fork",
            checkpoint=tmp_path,
            retry=retry,
            fault_plan=plan,
            failure_policy="quarantine",
        )
        assert first.failed_ids == [doomed]
        assert EnsembleCheckpoint(tmp_path).quarantined_ids() == [doomed]

        resumed = run_ensemble(
            jobs,
            workers=2,
            start_method="fork",
            checkpoint=tmp_path,
            retry=retry,
            failure_policy="quarantine",
        )
        assert not resumed.failures
        assert resumed.loaded_from_checkpoint == 3
        assert resumed.executed == 1
        assert EnsembleCheckpoint(tmp_path).quarantined_ids() == []
        clean = run_ensemble(jobs)
        assert_bit_identical(clean.results, resumed.results)
