"""Tests for the supervised runtime: policies, retries, quarantine, partials.

Everything here runs in-process or on fork workers and is cheap enough
for tier 1; the multiprocess fault-injection harness (worker kills,
supervisor timeouts under every start method) lives in
``test_supervision_faults.py``.
"""

import multiprocessing
import time

import pytest

from repro.errors import ConfigurationError, EnsembleAborted
from repro.runtime import (
    EnsembleRunner,
    RunnerFaultPlan,
    FaultSpec,
    InjectedFault,
    JobFailure,
    RetryPolicy,
    SupervisedPool,
    replica_jobs,
    run_ensemble,
)
from repro.runtime.supervision import _worker_main, validate_failure_policy


def small_jobs(replicas=3):
    """Cheap fast-engine chains with stable ids (replica-lam4-r<k>)."""
    return replica_jobs(n=15, lam=4.0, iterations=2000, replicas=replicas, seed=3)


def fail_always(job_id, max_attempts):
    """A plan that makes every attempt of one job raise."""
    return RunnerFaultPlan.build(
        *(FaultSpec(job_id, attempt, "raise") for attempt in range(1, max_attempts + 1))
    )


QUICK_RETRY = RetryPolicy(max_attempts=2, backoff_seconds=0.001, jitter=0.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.01)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_seconds=0.0)

    def test_first_attempt_never_waits(self):
        assert RetryPolicy().backoff_before(1, "job") == 0.0

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_seconds=0.2, backoff_multiplier=3.0, jitter=0.0
        )
        assert policy.backoff_before(2, "j") == pytest.approx(0.2)
        assert policy.backoff_before(3, "j") == pytest.approx(0.6)
        assert policy.backoff_before(4, "j") == pytest.approx(1.8)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_seconds=1.0, backoff_multiplier=1.0, jitter=0.25)
        delays = [policy.backoff_before(2, "job-a") for _ in range(3)]
        assert delays[0] == delays[1] == delays[2]
        assert 1.0 <= delays[0] < 1.25
        # Different jobs, attempts and seeds jitter differently — the
        # schedule is a function of (seed, job_id, attempt), not shared.
        assert policy.backoff_before(2, "job-b") != delays[0]
        assert policy.backoff_before(3, "job-a") != delays[0]
        reseeded = RetryPolicy(
            backoff_seconds=1.0, backoff_multiplier=1.0, jitter=0.25, seed=1
        )
        assert reseeded.backoff_before(2, "job-a") != delays[0]

    def test_failure_policy_validation(self):
        assert validate_failure_policy("raise") == "raise"
        assert validate_failure_policy("quarantine") == "quarantine"
        with pytest.raises(ConfigurationError):
            validate_failure_policy("retry-forever")
        with pytest.raises(ConfigurationError):
            EnsembleRunner(failure_policy="ignore")


class TestRunnerFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("j", 1, "explode")
        with pytest.raises(ConfigurationError):
            FaultSpec("j", 0, "raise")
        with pytest.raises(ConfigurationError):
            FaultSpec("j", 1, "stall", seconds=0.0)

    def test_duplicate_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            RunnerFaultPlan.build(FaultSpec("j", 1, "raise"), FaultSpec("j", 1, "stall"))

    def test_lookup(self):
        plan = RunnerFaultPlan.build(
            FaultSpec("a", 1, "raise"), FaultSpec("a", 2, "stall"), FaultSpec("b", 1, "exit")
        )
        assert plan.lookup("a", 1).action == "raise"
        assert plan.lookup("a", 2).action == "stall"
        assert plan.lookup("b", 2) is None
        assert plan.lookup("c", 1) is None

    def test_raise_trigger(self):
        with pytest.raises(InjectedFault, match="job 'j' attempt 2"):
            FaultSpec("j", 2, "raise").trigger()

    def test_deprecated_alias_and_no_amoebot_collision(self):
        """``FaultPlan`` stays importable as an alias of ``RunnerFaultPlan``,
        and is a distinct class from the amoebot particle-fault injector
        that used to share its name."""
        from repro.amoebot.faults import FaultPlan as AmoebotFaultPlan
        from repro.runtime import FaultPlan as RuntimeAlias
        from repro.runtime.supervision import FaultPlan as SupervisionAlias

        assert RuntimeAlias is RunnerFaultPlan
        assert SupervisionAlias is RunnerFaultPlan
        assert AmoebotFaultPlan is not RunnerFaultPlan


class TestSerialSupervision:
    def test_retry_recovers_bit_identically(self):
        """A job whose first attempt raises retries and matches a clean run."""
        jobs = small_jobs()
        clean = run_ensemble(jobs)
        plan = RunnerFaultPlan.build(FaultSpec(jobs[1].job_id, 1, "raise"))
        faulted = run_ensemble(jobs, retry=QUICK_RETRY, fault_plan=plan)
        assert not faulted.failures
        for c, f in zip(clean.results, faulted.results):
            assert c.trace.points == f.trace.points
            assert c.accepted_moves == f.accepted_moves
            assert c.rejection_counts == f.rejection_counts
        assert [r.attempts for r in faulted.results] == [1, 2, 1]
        assert faulted.table.column("status") == ["ok", "ok", "ok"]
        assert faulted.table.column("attempts") == [1, 2, 1]

    def test_quarantine_completes_with_failure_records(self):
        jobs = small_jobs()
        doomed = jobs[1].job_id
        result = run_ensemble(
            jobs,
            retry=QUICK_RETRY,
            fault_plan=fail_always(doomed, QUICK_RETRY.max_attempts),
            failure_policy="quarantine",
        )
        assert [r.job.job_id for r in result.results] == [jobs[0].job_id, jobs[2].job_id]
        assert result.failed_ids == [doomed]
        failure = result.failure_for(doomed)
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 2
        assert [e["attempt"] for e in failure.attempt_errors] == [1, 2]
        assert "InjectedFault" in failure.traceback
        with pytest.raises(KeyError):
            result.failure_for(jobs[0].job_id)
        # The table interleaves both kinds in submission order and the
        # ok()/failed() views split them.
        assert result.table.column("status") == ["ok", "failed", "ok"]
        assert len(result.table.ok()) == 2
        failed_rows = result.table.failed()
        assert len(failed_rows) == 1
        assert failed_rows.rows[0]["job_id"] == doomed
        assert failed_rows.rows[0]["error_type"] == "InjectedFault"
        assert failed_rows.rows[0]["attempts"] == 2

    def test_raise_policy_aborts_with_partial_results(self):
        jobs = small_jobs()
        plan = fail_always(jobs[1].job_id, QUICK_RETRY.max_attempts)
        with pytest.raises(EnsembleAborted, match="2 attempt") as excinfo:
            run_ensemble(jobs, retry=QUICK_RETRY, fault_plan=plan)
        error = excinfo.value
        assert [f.job.job_id for f in error.failures] == [jobs[1].job_id]
        partial = error.partial
        assert partial is not None
        assert [r.job.job_id for r in partial.results] == [jobs[0].job_id]
        assert partial.table.column("status") == ["ok", "failed"]

    def test_callbacks_and_progress_count_failures(self):
        jobs = small_jobs()
        doomed = jobs[0].job_id
        failures, reports = [], []
        run_ensemble(
            jobs,
            retry=QUICK_RETRY,
            fault_plan=fail_always(doomed, QUICK_RETRY.max_attempts),
            failure_policy="quarantine",
            on_failure=failures.append,
            on_progress=reports.append,
        )
        assert [f.job.job_id for f in failures] == [doomed]
        assert [p.completed for p in reports] == [1, 2, 3]
        assert [p.failed for p in reports] == [1, 1, 1]
        # Failed attempts are executed work: the ETA must account for them.
        assert all(p.eta_seconds is not None for p in reports)
        assert reports[-1].eta_seconds == 0.0

    def test_unsupervised_runs_bypass_the_supervised_layer(self):
        assert not EnsembleRunner().supervised
        assert EnsembleRunner(retry=QUICK_RETRY).supervised
        assert EnsembleRunner(fault_plan=RunnerFaultPlan()).supervised
        assert EnsembleRunner(failure_policy="quarantine").supervised


class TestAbortAttachesPartial:
    def test_infrastructure_error_wraps_with_partial(self, monkeypatch, tmp_path):
        """A mid-run crash must surface everything that did complete."""
        jobs = small_jobs()
        real_execute = __import__(
            "repro.runtime.jobs", fromlist=["execute_job"]
        ).execute_job
        calls = []

        def explode_on_second(job):
            calls.append(job.job_id)
            if len(calls) == 2:
                raise OSError("disk on fire")
            return real_execute(job)

        monkeypatch.setattr("repro.runtime.runner.execute_job", explode_on_second)
        with pytest.raises(EnsembleAborted, match="disk on fire") as excinfo:
            run_ensemble(jobs, checkpoint=tmp_path)
        error = excinfo.value
        assert isinstance(error.__cause__, OSError)
        assert [r.job.job_id for r in error.partial.results] == [jobs[0].job_id]
        # The completed job was checkpointed before the abort: a clean
        # rerun resumes it instead of recomputing.
        monkeypatch.undo()
        resumed = run_ensemble(jobs, checkpoint=tmp_path)
        assert resumed.loaded_from_checkpoint == 1
        assert len(resumed.results) == len(jobs)


class TestQuarantineCheckpoint:
    def test_resume_retries_exactly_the_quarantined_jobs(self, tmp_path):
        jobs = small_jobs()
        doomed = jobs[2].job_id
        checkpoint = tmp_path / "cp"
        first = run_ensemble(
            jobs,
            checkpoint=checkpoint,
            retry=QUICK_RETRY,
            fault_plan=fail_always(doomed, QUICK_RETRY.max_attempts),
            failure_policy="quarantine",
        )
        assert first.failed_ids == [doomed]

        from repro.runtime import EnsembleCheckpoint

        cp = EnsembleCheckpoint(checkpoint)
        assert cp.quarantined_ids() == [doomed]
        assert cp.load_failure(jobs[2]).error_type == "InjectedFault"

        # Same ensemble, faults gone (the transient cleared): only the
        # quarantined job runs, and its success overwrites the failure doc.
        resumed = run_ensemble(
            jobs, checkpoint=checkpoint, retry=QUICK_RETRY, failure_policy="quarantine"
        )
        assert not resumed.failures
        assert resumed.loaded_from_checkpoint == 2
        assert resumed.executed == 1
        assert cp.quarantined_ids() == []
        assert cp.load_failure(jobs[2]) is None
        clean = run_ensemble(jobs)
        retried = resumed.result_for(doomed)
        assert retried.trace.points == clean.result_for(doomed).trace.points


class TestSupervisedPool:
    def test_worker_count_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisedPool(workers=0)

    def test_empty_job_list_yields_nothing(self):
        assert list(SupervisedPool(workers=2).run([])) == []

    def test_worker_heartbeat_advances_while_the_job_runs(self):
        """The liveness signal must tick even while the worker is busy."""
        ctx = multiprocessing.get_context("fork")
        tasks, results = ctx.Queue(1), ctx.Queue()
        heartbeat = ctx.Value("d", 0.0)
        process = ctx.Process(
            target=_worker_main, args=(0, tasks, results, heartbeat, 0.02), daemon=True
        )
        process.start()
        try:
            job = small_jobs(1)[0]
            tasks.put((job, 1, FaultSpec(job.job_id, 1, "stall", seconds=0.3)))
            assert results.get(timeout=10.0)[0] == "started"
            time.sleep(0.1)
            first = heartbeat.value
            assert first > 0.0
            time.sleep(0.1)
            assert heartbeat.value >= first
            kind, _, job_id, attempt, result = results.get(timeout=10.0)
            assert (kind, job_id, attempt) == ("ok", job.job_id, 1)
            assert result.attempts == 1
            tasks.put(None)
            process.join(5.0)
            assert process.exitcode == 0
        finally:
            if process.is_alive():
                process.terminate()
                process.join(1.0)
