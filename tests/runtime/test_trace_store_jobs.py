"""Streaming-trace integration across the job/checkpoint stack.

Lockstep guarantees: a run with ``trace_store`` set streams a trace that
is row-for-row identical to the in-memory trace of an identically-seeded
run without it — for every kernel (compression, amoebot, separation,
bridging) — because the sink consumes no randomness.  Checkpoint
documents for store-backed jobs carry a ``trace_store_ref`` instead of
inline points, re-attach to the directory on resume, and refuse
mismatched or incomplete manifests.
"""

import dataclasses
import json

import pytest

from repro.core.compression import CompressionSimulation
from repro.errors import SerializationError
from repro.io.trace_store import TraceStoreReader, TraceStoreSink
from repro.runtime import (
    EnsembleCheckpoint,
    chain_result_from_json,
    chain_result_to_json,
    job_from_json,
    job_to_json,
    replica_jobs,
    run_ensemble,
    run_job,
)
from repro.runtime.jobs import (
    AmoebotJob,
    ChainJob,
    amoebot_replica_jobs,
    bridging_gamma_sweep_jobs,
    execute_job,
    separation_replica_jobs,
)


def with_store(job, root):
    return dataclasses.replace(job, trace_store=str(root))


def assert_lockstep(job, root):
    """Streamed and in-memory runs of the same job must agree exactly."""
    plain = execute_job(job)
    streamed = execute_job(with_store(job, root))
    assert plain.trace == streamed.trace
    assert plain.iterations == streamed.iterations
    assert plain.accepted_moves == streamed.accepted_moves
    assert plain.trace_store_path is None
    assert streamed.trace_store_path is not None

    reader = TraceStoreReader(streamed.trace_store_path)
    assert reader.complete
    assert reader.read_trace() == plain.trace  # row for row, bit for bit
    assert reader.meta["job_id"] == job.job_id
    assert reader.meta["job"] == job_to_json(with_store(job, root))
    return streamed


class TestLockstep:
    def test_compression_trace_job(self, tmp_path):
        job = replica_jobs(n=15, lam=4.0, iterations=1500, replicas=1, seed=7)[0]
        streamed = assert_lockstep(job, tmp_path)
        assert streamed.trace_store_path == str(tmp_path / job.job_id)

    def test_compression_time_job(self, tmp_path):
        job = ChainJob(
            job_id="hit",
            lam=5.0,
            seed=11,
            n=12,
            kind="compression_time",
            alpha=3.0,
            max_iterations=20_000,
            check_every=500,
        )
        plain = run_job(job)
        streamed = run_job(with_store(job, tmp_path))
        assert plain.compression_time == streamed.compression_time
        assert plain.trace == streamed.trace
        assert TraceStoreReader(streamed.trace_store_path).read_trace() == plain.trace

    def test_amoebot_job(self, tmp_path):
        job = amoebot_replica_jobs(
            n=10, lam=4.0, activations=400, replicas=1, seed=5
        )[0]
        assert_lockstep(job, tmp_path)

    def test_separation_job(self, tmp_path):
        job = separation_replica_jobs(
            n=12, lam=4.0, gamma=4.0, iterations=600, replicas=1, seed=9
        )[0]
        assert_lockstep(job, tmp_path)

    def test_bridging_job(self, tmp_path):
        job = bridging_gamma_sweep_jobs(
            n=12, lam=4.0, gammas=[2.0], iterations=600, arm_length=6, seed=13
        )[0]
        assert_lockstep(job, tmp_path)

    def test_engine_hook_directly(self, tmp_path):
        """The ``trace_sink=`` hook itself, below the job layer."""
        from repro.lattice.shapes import line

        plain = CompressionSimulation(line(12), lam=4.0, seed=3, engine="fast")
        plain.run(1200, record_every=60)
        sink = TraceStoreSink(tmp_path / "s", meta={"n": 12, "lambda": 4.0})
        streamed = CompressionSimulation(
            line(12), lam=4.0, seed=3, engine="fast", trace_sink=sink
        )
        streamed.run(1200, record_every=60)
        sink.close()
        assert streamed.trace == plain.trace
        assert TraceStoreReader(tmp_path / "s").read_trace() == plain.trace

    def test_engine_hook_cadence(self, tmp_path):
        """``every=k`` keeps one recorded point in k, first always included."""
        from repro.lattice.shapes import line

        sink = TraceStoreSink(tmp_path / "s", every=3, meta={"n": 12, "lambda": 4.0})
        simulation = CompressionSimulation(
            line(12), lam=4.0, seed=3, engine="fast", trace_sink=sink
        )
        simulation.run(1200, record_every=60)
        sink.close()
        kept = TraceStoreReader(tmp_path / "s").read_trace().points
        assert kept == simulation.trace.points[::3]


class TestCheckpointIntegration:
    def jobs(self, root):
        return [
            with_store(job, root)
            for job in replica_jobs(n=12, lam=4.0, iterations=800, replicas=3, seed=21)
        ]

    def test_document_references_store_instead_of_points(self, tmp_path):
        job = self.jobs(tmp_path / "stores")[0]
        result = run_job(job)
        payload = chain_result_to_json(result)
        assert payload["trace"]["kind"] == "trace_store_ref"
        assert payload["trace"]["path"] == result.trace_store_path
        assert "points" not in payload["trace"]
        loaded = chain_result_from_json(json.loads(json.dumps(payload)))
        assert loaded.trace == result.trace
        assert loaded.trace_store_path == result.trace_store_path

    def test_resume_reattaches_store(self, tmp_path):
        jobs = self.jobs(tmp_path / "stores")
        first = run_ensemble(jobs, checkpoint=tmp_path / "cp")
        resumed = run_ensemble(jobs, checkpoint=tmp_path / "cp")
        assert resumed.loaded_from_checkpoint == len(jobs)
        for job in jobs:
            a = first.result_for(job.job_id)
            b = resumed.result_for(job.job_id)
            assert a.trace == b.trace
            assert b.trace_store_path == str(tmp_path / "stores" / job.job_id)
            assert b.from_checkpoint

    def test_partial_resume_executes_only_missing(self, tmp_path):
        jobs = self.jobs(tmp_path / "stores")
        checkpoint = EnsembleCheckpoint(tmp_path / "cp")
        for job in jobs[:2]:
            checkpoint.store(run_job(job))
        resumed = run_ensemble(jobs, checkpoint=tmp_path / "cp")
        assert resumed.loaded_from_checkpoint == 2
        assert resumed.executed == 1

    def test_refuses_mismatched_manifest_fingerprint(self, tmp_path):
        jobs = self.jobs(tmp_path / "stores")[:1]
        run_ensemble(jobs, checkpoint=tmp_path / "cp")
        manifest_path = tmp_path / "stores" / jobs[0].job_id / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["meta"]["job"]["seed"] = manifest["meta"]["job"]["seed"] + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SerializationError, match="different job specification"):
            run_ensemble(jobs, checkpoint=tmp_path / "cp")

    def test_refuses_incomplete_store(self, tmp_path):
        jobs = self.jobs(tmp_path / "stores")[:1]
        run_ensemble(jobs, checkpoint=tmp_path / "cp")
        manifest_path = tmp_path / "stores" / jobs[0].job_id / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["complete"] = False
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SerializationError, match="incomplete"):
            run_ensemble(jobs, checkpoint=tmp_path / "cp")

    def test_refuses_deleted_store(self, tmp_path):
        import shutil

        jobs = self.jobs(tmp_path / "stores")[:1]
        run_ensemble(jobs, checkpoint=tmp_path / "cp")
        shutil.rmtree(tmp_path / "stores" / jobs[0].job_id)
        with pytest.raises(SerializationError):
            run_ensemble(jobs, checkpoint=tmp_path / "cp")


class TestFingerprintCompat:
    def test_storeless_job_payload_has_no_trace_store_key(self):
        """Old checkpoint documents predate the field; storeless jobs must
        fingerprint exactly as they did then."""
        job = replica_jobs(n=10, lam=4.0, iterations=100, replicas=1, seed=0)[0]
        payload = job_to_json(job)
        assert "trace_store" not in payload
        assert job_from_json(json.loads(json.dumps(payload))) == job

    def test_store_backed_job_round_trips(self, tmp_path):
        job = with_store(
            replica_jobs(n=10, lam=4.0, iterations=100, replicas=1, seed=0)[0],
            tmp_path,
        )
        payload = job_to_json(job)
        assert payload["trace_store"] == str(tmp_path)
        assert job_from_json(json.loads(json.dumps(payload))) == job
        amoebot = AmoebotJob(
            job_id="a", lam=4.0, seed=1, n=8, activations=10,
            trace_store=str(tmp_path),
        )
        assert job_from_json(json.loads(json.dumps(job_to_json(amoebot)))) == amoebot

    def test_trace_store_must_be_path_like(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="trace_store"):
            ChainJob(job_id="x", lam=4.0, seed=0, n=10, iterations=10, trace_store=7)
