"""Checkpoint/resume tests: round-trips, exact resume, stale-directory refusal."""

import dataclasses
import json

import pytest

from repro.errors import SerializationError
from repro.runtime import (
    EnsembleCheckpoint,
    JobFailure,
    chain_result_from_json,
    chain_result_to_json,
    job_failure_from_json,
    job_failure_to_json,
    job_from_json,
    job_to_json,
    lambda_sweep_jobs,
    run_ensemble,
    run_job,
)


def sweep_jobs():
    return lambda_sweep_jobs(n=15, lambdas=[2.0, 5.0], iterations=2000, seed=3, replicas=2)


class TestSerializationRoundTrip:
    def test_job_roundtrip_is_lossless(self):
        for job in sweep_jobs():
            payload = json.loads(json.dumps(job_to_json(job)))
            assert job_from_json(payload) == job

    def test_job_roundtrip_with_explicit_nodes(self):
        from repro.runtime import ChainJob

        job = ChainJob(
            job_id="tri",
            lam=3.0,
            seed=1,
            initial_nodes=((0, 0), (1, 0), (0, 1)),
            kind="compression_time",
            alpha=2.0,
            max_iterations=500,
        )
        assert job_from_json(json.loads(json.dumps(job_to_json(job)))) == job

    def test_result_roundtrip_is_lossless(self):
        result = run_job(sweep_jobs()[0])
        payload = json.loads(json.dumps(chain_result_to_json(result)))
        loaded = chain_result_from_json(payload)
        assert loaded.job == result.job
        assert loaded.trace.points == result.trace.points
        assert loaded.iterations == result.iterations
        assert loaded.accepted_moves == result.accepted_moves
        assert loaded.rejection_counts == result.rejection_counts
        assert loaded.compression_time == result.compression_time

    def test_malformed_payloads_rejected(self):
        with pytest.raises(SerializationError):
            chain_result_from_json({"kind": "something_else"})
        with pytest.raises(SerializationError):
            job_from_json({"job_id": "x"})

    def test_invalid_job_fields_surface_as_serialization_error(self):
        """ChainJob validation failures inside a document must not leak ConfigurationError."""
        good = job_to_json(sweep_jobs()[0])
        for corruption in ({"engine": "warp"}, {"kind": "nope"}, {"iterations": -1}):
            with pytest.raises(SerializationError):
                job_from_json({**good, **corruption})

    def test_tuple_metadata_resumes_cleanly(self, tmp_path):
        """JSON normalizes tuples to lists; the fingerprint must not care."""
        from repro.runtime import ChainJob

        job = ChainJob(
            job_id="meta", lam=4.0, seed=0, n=10, iterations=50,
            metadata={"window": (1, 2)},
        )
        run_ensemble([job], checkpoint=tmp_path)
        resumed = run_ensemble([job], checkpoint=tmp_path)
        assert resumed.loaded_from_checkpoint == 1

    def test_non_serializable_metadata_fails_loudly(self):
        from repro.runtime import ChainJob

        job = ChainJob(
            job_id="bad-meta", lam=4.0, seed=0, n=10, iterations=50,
            metadata={"tags": {"a"}},
        )
        with pytest.raises(SerializationError):
            job_to_json(job)


class TestCheckpointResume:
    def test_resume_skips_completed_and_is_bit_identical(self, tmp_path):
        jobs = sweep_jobs()
        baseline = run_ensemble(jobs, workers=1)

        # Simulate an interrupted run: only half the ensemble completed.
        partial = run_ensemble(jobs[:2], workers=1, checkpoint=tmp_path)
        assert partial.loaded_from_checkpoint == 0
        assert sorted(EnsembleCheckpoint(tmp_path).completed_ids()) == sorted(
            job.job_id for job in jobs[:2]
        )

        resumed = run_ensemble(jobs, workers=4, checkpoint=tmp_path)
        assert resumed.loaded_from_checkpoint == 2
        assert resumed.executed == 2
        for base, res in zip(baseline.results, resumed.results):
            assert base.trace.points == res.trace.points
            assert base.rejection_counts == res.rejection_counts

    def test_fully_checkpointed_run_executes_nothing(self, tmp_path):
        jobs = sweep_jobs()
        run_ensemble(jobs, checkpoint=tmp_path)
        again = run_ensemble(jobs, checkpoint=tmp_path)
        assert again.loaded_from_checkpoint == len(jobs)
        assert again.executed == 0
        assert all(result.from_checkpoint for result in again.results)

    def test_stale_checkpoint_is_refused(self, tmp_path):
        jobs = sweep_jobs()
        run_ensemble(jobs[:1], checkpoint=tmp_path)
        # Same job id, different specification (more iterations).
        altered = dataclasses.replace(jobs[0], iterations=jobs[0].iterations + 1)
        with pytest.raises(SerializationError):
            run_ensemble([altered], checkpoint=tmp_path)

    def test_checkpoint_files_are_plain_json(self, tmp_path):
        jobs = sweep_jobs()[:1]
        run_ensemble(jobs, checkpoint=tmp_path)
        path = EnsembleCheckpoint(tmp_path).path_for(jobs[0].job_id)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["kind"] == "chain_result"
        assert payload["job"]["job_id"] == jobs[0].job_id
        assert payload["trace"]["kind"] == "compression_trace"

    def test_result_documents_carry_status_and_attempts(self, tmp_path):
        """New documents state status/attempts; old documents (which
        predate the fields) read back as a single-attempt success."""
        jobs = sweep_jobs()[:1]
        run_ensemble(jobs, checkpoint=tmp_path)
        path = EnsembleCheckpoint(tmp_path).path_for(jobs[0].job_id)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["status"] == "ok"
        assert payload["attempts"] == 1
        del payload["status"], payload["attempts"]
        old = chain_result_from_json(payload)
        assert old.attempts == 1


class TestFailureDocuments:
    def failure(self, job):
        return JobFailure(
            job=job,
            error_type="InjectedFault",
            message="injected fault",
            traceback="Traceback ...",
            attempts=2,
            wall_seconds=0.5,
            attempt_errors=[
                {"attempt": 1, "error_type": "InjectedFault",
                 "message": "injected fault", "wall_seconds": 0.2},
                {"attempt": 2, "error_type": "InjectedFault",
                 "message": "injected fault", "wall_seconds": 0.3},
            ],
        )

    def test_failure_roundtrip_is_lossless(self):
        failure = self.failure(sweep_jobs()[0])
        payload = json.loads(json.dumps(job_failure_to_json(failure)))
        assert payload["kind"] == "job_failure"
        assert payload["status"] == "failed"
        loaded = job_failure_from_json(payload)
        assert loaded.job == failure.job
        assert loaded.error_type == failure.error_type
        assert loaded.message == failure.message
        assert loaded.traceback == failure.traceback
        assert loaded.attempts == failure.attempts
        assert loaded.wall_seconds == failure.wall_seconds
        assert loaded.attempt_errors == failure.attempt_errors

    def test_malformed_failure_payloads_rejected(self):
        with pytest.raises(SerializationError):
            job_failure_from_json({"kind": "chain_result"})
        with pytest.raises(SerializationError):
            job_failure_from_json({"kind": "job_failure"})

    def test_failure_doc_counts_as_not_completed(self, tmp_path):
        """A quarantined job's slot holds its failure record: ``load``
        reads it as pending (so resume retries it), ``load_failure``
        surfaces the record, and a later success overwrites it."""
        jobs = sweep_jobs()[:1]
        checkpoint = EnsembleCheckpoint(tmp_path)
        checkpoint.store_failure(self.failure(jobs[0]))
        assert checkpoint.load(jobs[0]) is None
        assert checkpoint.load_failure(jobs[0]).attempts == 2
        assert checkpoint.quarantined_ids() == [jobs[0].job_id]
        assert checkpoint.completed_ids() == [jobs[0].job_id]

        result = run_ensemble(jobs, checkpoint=tmp_path)
        assert result.executed == 1
        assert checkpoint.quarantined_ids() == []
        assert checkpoint.load_failure(jobs[0]) is None
        assert checkpoint.load(jobs[0]) is not None

    def test_stale_failure_doc_is_refused(self, tmp_path):
        """Fingerprint validation covers failure documents too: a foreign
        directory is refused before any retry runs."""
        jobs = sweep_jobs()[:1]
        checkpoint = EnsembleCheckpoint(tmp_path)
        checkpoint.store_failure(self.failure(jobs[0]))
        altered = dataclasses.replace(jobs[0], iterations=jobs[0].iterations + 1)
        with pytest.raises(SerializationError, match="stale checkpoint"):
            checkpoint.load(altered)
        with pytest.raises(SerializationError, match="stale checkpoint"):
            checkpoint.load_failure(altered)
        with pytest.raises(SerializationError, match="stale checkpoint"):
            run_ensemble([altered], checkpoint=tmp_path)
