"""Tests for the parallel ensemble runner: jobs, determinism, results table."""

import pytest

from repro.core.compression import CompressionSimulation
from repro.errors import AnalysisError, ConfigurationError
from repro.runtime import (
    ChainJob,
    EnsembleRunner,
    ResultsTable,
    lambda_sweep_jobs,
    replica_jobs,
    run_ensemble,
    run_job,
    scaling_time_jobs,
)
from repro.rng import spawn_seeds


def small_sweep_jobs():
    """A 4-point sweep x 2 replicas: 8 cheap jobs shared by several tests."""
    return lambda_sweep_jobs(
        n=20, lambdas=[1.5, 2.5, 4.0, 6.0], iterations=4000, seed=0, replicas=2
    )


class TestChainJob:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChainJob(job_id="bad id!", lam=4.0, seed=0, n=10)
        with pytest.raises(ConfigurationError):
            ChainJob(job_id="a", lam=4.0, seed=0)  # neither n nor nodes
        with pytest.raises(ConfigurationError):
            ChainJob(job_id="a", lam=4.0, seed=0, n=10, initial_nodes=((0, 0),))
        with pytest.raises(ConfigurationError):
            ChainJob(job_id="a", lam=4.0, seed=0, n=10, engine="warp")
        with pytest.raises(ConfigurationError):
            ChainJob(job_id="a", lam=4.0, seed=0, n=10, kind="nope")
        with pytest.raises(ConfigurationError):
            ChainJob(job_id="a", lam=4.0, seed=0, n=10, kind="compression_time")
        with pytest.raises(ConfigurationError):
            ChainJob(job_id="a", lam=4.0, seed="zero", n=10)

    def test_explicit_initial_nodes(self):
        job = ChainJob(
            job_id="tri",
            lam=4.0,
            seed=3,
            initial_nodes=((0, 0), (1, 0), (0, 1)),
            iterations=100,
        )
        result = run_job(job)
        assert result.trace.n == 3
        assert result.iterations == 100

    def test_builders_are_deterministic(self):
        assert small_sweep_jobs() == small_sweep_jobs()
        first = scaling_time_jobs([10, 14], lam=6.0, alpha=1.8, repetitions=2, budget_factor=100)
        assert first == scaling_time_jobs(
            [10, 14], lam=6.0, alpha=1.8, repetitions=2, budget_factor=100
        )
        replicas = replica_jobs(n=15, lam=4.0, iterations=500, replicas=3, seed=9)
        assert [job.seed for job in replicas] == spawn_seeds(9, 3)
        assert len({job.job_id for job in replicas}) == 3

    def test_job_matches_direct_simulation(self):
        """A job's trace is exactly what CompressionSimulation produces for its seed."""
        job = small_sweep_jobs()[0]
        result = run_job(job)
        simulation = CompressionSimulation.from_line(
            job.n, lam=job.lam, seed=job.seed, engine=job.engine
        )
        simulation.run(job.iterations, record_every=job.record_every)
        assert result.trace.points == simulation.trace.points
        assert result.accepted_moves == simulation.chain.accepted_moves


class TestEnsembleDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        """4 workers, same jobs: per-seed traces and counters must be identical."""
        jobs = small_sweep_jobs()
        serial = run_ensemble(jobs, workers=1)
        parallel = run_ensemble(jobs, workers=4)
        assert [r.job.job_id for r in serial.results] == [r.job.job_id for r in parallel.results]
        for s, p in zip(serial.results, parallel.results):
            assert s.trace.points == p.trace.points
            assert s.accepted_moves == p.accepted_moves
            assert s.rejection_counts == p.rejection_counts
            assert s.compression_time == p.compression_time
        # Tables agree on everything except wall-clock timings.
        for srow, prow in zip(serial.table.rows, parallel.table.rows):
            srow = {k: v for k, v in srow.items() if k != "wall_seconds"}
            prow = {k: v for k, v in prow.items() if k != "wall_seconds"}
            assert srow == prow

    def test_compression_time_jobs_deterministic_across_workers(self):
        jobs = scaling_time_jobs(
            [10, 12], lam=6.0, alpha=1.8, repetitions=2, budget_factor=300, seed=5
        )
        serial = run_ensemble(jobs, workers=1)
        parallel = run_ensemble(jobs, workers=4)
        assert serial.table.column("compression_time") == parallel.table.column(
            "compression_time"
        )

    def test_duplicate_job_ids_rejected(self):
        job = small_sweep_jobs()[0]
        with pytest.raises(ConfigurationError):
            run_ensemble([job, job])

    def test_worker_validation(self):
        with pytest.raises(ConfigurationError):
            EnsembleRunner(workers=0)

    def test_on_result_streams_every_job(self):
        jobs = small_sweep_jobs()[:3]
        seen = []
        run_ensemble(jobs, workers=2, on_result=lambda result: seen.append(result.job.job_id))
        assert sorted(seen) == sorted(job.job_id for job in jobs)

    def test_on_progress_fires_once_per_job_in_submission_order(self):
        """Serial execution completes jobs in submission order, so the
        progress stream must follow it: one report per job, completed
        counting 1..total, ETA present and ending at zero."""
        jobs = small_sweep_jobs()[:4]
        reports = []
        run_ensemble(jobs, workers=1, on_progress=reports.append)
        assert [progress.job_id for progress in reports] == [job.job_id for job in jobs]
        assert [progress.completed for progress in reports] == [1, 2, 3, 4]
        assert all(progress.total == len(jobs) for progress in reports)
        elapsed = [progress.elapsed_seconds for progress in reports]
        assert elapsed == sorted(elapsed) and elapsed[0] >= 0.0
        for progress in reports[:-1]:
            assert progress.eta_seconds is not None and progress.eta_seconds >= 0.0
        assert reports[-1].eta_seconds == 0.0

    def test_on_progress_counts_checkpoint_restores(self, tmp_path):
        jobs = small_sweep_jobs()[:3]
        run_ensemble(jobs, checkpoint=tmp_path)
        reports = []
        resumed = run_ensemble(jobs, checkpoint=tmp_path, on_progress=reports.append)
        assert resumed.loaded_from_checkpoint == len(jobs)
        assert [progress.completed for progress in reports] == [1, 2, 3]
        assert reports[-1].eta_seconds == 0.0

    def test_eta_is_none_while_only_restores_have_completed(self, tmp_path):
        """Checkpoint restores execute no work, so ``elapsed / executed``
        has no denominator: mid-stream ETA must be ``None``, never a
        division error or a bogus near-zero estimate — but completing the
        whole ensemble from restores still reports ``eta_seconds == 0.0``."""
        jobs = small_sweep_jobs()[:3]
        run_ensemble(jobs, checkpoint=tmp_path)
        reports = []
        run_ensemble(jobs, checkpoint=tmp_path, on_progress=reports.append)
        assert [progress.eta_seconds for progress in reports] == [None, None, 0.0]

    def test_eta_recovers_once_a_job_executes_after_restores(self, tmp_path):
        """A partially-restored run: restore reports carry no ETA, the
        first executed job re-establishes the estimate, completion pins
        it to zero."""
        jobs = small_sweep_jobs()[:4]
        run_ensemble(jobs[:2], checkpoint=tmp_path)
        reports = []
        resumed = run_ensemble(jobs, checkpoint=tmp_path, on_progress=reports.append)
        assert resumed.loaded_from_checkpoint == 2
        assert resumed.executed == 2
        assert [progress.completed for progress in reports] == [1, 2, 3, 4]
        assert [progress.eta_seconds is None for progress in reports] == [
            True, True, False, False,
        ]
        third = reports[2]
        # One executed job, one remaining: the classic estimate is the
        # elapsed wall-clock itself.
        assert third.eta_seconds == pytest.approx(third.elapsed_seconds)
        assert reports[3].eta_seconds == 0.0

    def test_vector_engine_jobs_match_fast_engine_jobs(self):
        """engine="vector" runs through the runner and agrees with "fast"."""
        fast_job = ChainJob(job_id="f", lam=4.0, seed=11, n=40, iterations=20_000)
        vector_job = ChainJob(
            job_id="v", lam=4.0, seed=11, n=40, engine="vector", iterations=20_000
        )
        fast_result, vector_result = run_ensemble([fast_job, vector_job]).results
        assert vector_result.accepted_moves == fast_result.accepted_moves
        assert vector_result.rejection_counts == fast_result.rejection_counts
        assert vector_result.trace.final() == fast_result.trace.final()


class TestResultsTable:
    def test_table_shape_and_grouping(self):
        jobs = small_sweep_jobs()
        ensemble = run_ensemble(jobs)
        table = ensemble.table
        assert len(table) == len(jobs)
        assert set(table.column("lambda")) == {1.5, 2.5, 4.0, 6.0}
        groups = table.group_by("lambda")
        assert all(len(group) == 2 for group in groups.values())
        filtered = table.where(**{"lambda": 4.0, "replica": 0})
        assert len(filtered) == 1
        assert filtered.rows[0]["job_id"] == "sweep-i2-lam4-r0"

    def test_near_equal_lambdas_get_distinct_job_ids(self):
        jobs = lambda_sweep_jobs(
            n=10, lambdas=[2.17, 2.1700001, 2.0000001, 2.0], iterations=10, seed=0
        )
        assert len({job.job_id for job in jobs}) == len(jobs)

    def test_raising_replicas_preserves_existing_seeds(self):
        """Replica-major seed indexing: a grown ensemble keeps its old jobs."""
        small = lambda_sweep_jobs(n=10, lambdas=[2.0, 4.0, 6.0], iterations=10, seed=0)
        grown = lambda_sweep_jobs(
            n=10, lambdas=[2.0, 4.0, 6.0], iterations=10, seed=0, replicas=3
        )
        by_id = {job.job_id: job for job in grown}
        assert all(by_id[job.job_id] == job for job in small)
        scale_small = scaling_time_jobs([10, 14], lam=6.0, alpha=1.8, repetitions=1, budget_factor=50)
        scale_grown = scaling_time_jobs([10, 14], lam=6.0, alpha=1.8, repetitions=3, budget_factor=50)
        grown_ids = {job.job_id: job for job in scale_grown}
        assert all(grown_ids[job.job_id] == job for job in scale_small)

    def test_extreme_lambdas_make_valid_job_ids(self):
        """%g scientific notation must not leak '+' into id-pattern territory."""
        jobs = lambda_sweep_jobs(n=10, lambdas=[1e6, 1e-7], iterations=10, seed=0)
        assert [job.job_id for job in jobs] == ["sweep-i0-lam1e06-r0", "sweep-i1-lam1e-07-r0"]
        assert replica_jobs(n=10, lam=2e6, iterations=10, replicas=1)[0].job_id == (
            "replica-lam2e06-r0"
        )

    def test_sweep_physics_in_table(self):
        """Large lambda compresses: the table must show the trend end to end."""
        jobs = lambda_sweep_jobs(n=25, lambdas=[1.5, 6.0], iterations=30_000, seed=2)
        table = run_ensemble(jobs, workers=2).table
        expanded = table.where(**{"lambda": 1.5}).mean("final_perimeter")
        compressed = table.where(**{"lambda": 6.0}).mean("final_perimeter")
        assert expanded > compressed

    def test_summary_via_statistics(self):
        jobs = replica_jobs(n=15, lam=4.0, iterations=3000, replicas=4, seed=7)
        table = run_ensemble(jobs, workers=2).table
        (summary,) = table.summary("final_alpha")
        assert summary["count"] == 4
        assert summary["missing"] == 0
        assert summary["ci_low"] <= summary["mean"] <= summary["ci_high"]
        by_lambda = table.summary("final_alpha", by="lambda")
        assert [s["group"] for s in by_lambda] == [4.0]

    def test_summary_reports_missing_hitting_times(self):
        jobs = scaling_time_jobs(
            [20], lam=4.0, alpha=1.01, repetitions=2, budget_factor=0.1, seed=0
        )
        table = run_ensemble(jobs).table
        (summary,) = table.summary("compression_time", by="n")
        assert summary["missing"] == 2
        assert summary["mean"] is None

    def test_json_roundtrip_and_errors(self):
        table = ResultsTable([{"a": 1, "b": 2.5}])
        clone = ResultsTable.from_json(table.to_json())
        assert clone.rows == table.rows
        with pytest.raises(AnalysisError):
            ResultsTable.from_json({"kind": "other"})
        with pytest.raises(AnalysisError):
            ResultsTable().mean("anything")
