"""Distributed-simulator jobs through the ensemble runner.

The amoebot engines join the runtime layer exactly like the chain
engines did: picklable :class:`AmoebotJob` descriptions with plain
integer seeds, serial/parallel bit-identity, checkpoint resume with
fingerprint validation, and results flowing into the shared
:class:`ResultsTable`.
"""

import pytest

from repro.errors import ConfigurationError, SerializationError
from repro.runtime import (
    AmoebotJob,
    amoebot_replica_jobs,
    execute_job,
    run_amoebot_job,
    run_ensemble,
)
from repro.runtime.checkpoint import job_from_json, job_to_json


def small_jobs(engine="fast", replicas=3, activations=8_000):
    return amoebot_replica_jobs(
        n=20, lam=4.0, activations=activations, replicas=replicas, seed=0, engine=engine
    )


class TestJobValidation:
    def test_engine_validated(self):
        with pytest.raises(ConfigurationError):
            AmoebotJob(job_id="x", lam=4.0, seed=0, n=10, engine="vector")

    def test_exactly_one_start_spec(self):
        with pytest.raises(ConfigurationError):
            AmoebotJob(job_id="x", lam=4.0, seed=0)
        with pytest.raises(ConfigurationError):
            AmoebotJob(job_id="x", lam=4.0, seed=0, n=5, initial_nodes=((0, 0),))

    def test_activations_non_negative(self):
        with pytest.raises(ConfigurationError):
            AmoebotJob(job_id="x", lam=4.0, seed=0, n=10, activations=-1)

    def test_job_id_pattern(self):
        with pytest.raises(ConfigurationError):
            AmoebotJob(job_id="no/slashes", lam=4.0, seed=0, n=10)

    def test_record_every_must_be_positive(self):
        for bad in (0, -10):
            with pytest.raises(ConfigurationError):
                AmoebotJob(
                    job_id="x", lam=4.0, seed=0, n=10, activations=100, record_every=bad
                )


class TestExecution:
    def test_run_amoebot_job_records_trace(self):
        job = AmoebotJob(
            job_id="solo", lam=4.0, seed=3, n=20, activations=5_000, record_every=1_000
        )
        result = run_amoebot_job(job)
        assert result.iterations == 5_000
        assert result.trace.points[0].iteration == 0
        assert result.trace.final().iteration == 5_000
        assert len(result.trace.points) == 6
        assert result.trace.final().perimeter <= result.trace.points[0].perimeter
        counters = result.rejection_counts
        # Every activation is exactly one of the four outcome classes.
        assert (
            counters["expansions"]
            + result.accepted_moves
            + counters["aborted_moves"]
            + counters["idle_activations"]
            == result.iterations
        )

    def test_engines_produce_identical_results(self):
        fast = run_amoebot_job(
            AmoebotJob(job_id="f", lam=4.0, seed=5, n=18, activations=6_000)
        )
        reference = run_amoebot_job(
            AmoebotJob(job_id="f", lam=4.0, seed=5, n=18, activations=6_000, engine="reference")
        )
        assert fast.trace.points == reference.trace.points
        assert fast.rejection_counts == reference.rejection_counts

    def test_execute_job_dispatches(self):
        from repro.runtime import ChainJob

        amoebot = execute_job(
            AmoebotJob(job_id="a", lam=4.0, seed=1, n=12, activations=1_000)
        )
        chain = execute_job(
            ChainJob(job_id="c", lam=4.0, seed=1, n=12, iterations=1_000)
        )
        assert amoebot.job.kind == "amoebot_trace"
        assert chain.job.kind == "trace"

    def test_non_uniform_rates_thread_through(self):
        rates = tuple((i, 3.0 if i < 5 else 1.0) for i in range(15))
        job = AmoebotJob(
            job_id="rated", lam=4.0, seed=2, n=15, activations=4_000, rates=rates
        )
        again = run_amoebot_job(job)
        assert run_amoebot_job(job).trace.points == again.trace.points


class TestEnsembles:
    def test_parallel_equals_serial(self):
        jobs = small_jobs()
        serial = run_ensemble(jobs, workers=1)
        parallel = run_ensemble(jobs, workers=2)
        for a, b in zip(serial.results, parallel.results):
            assert a.trace.points == b.trace.points
            assert a.rejection_counts == b.rejection_counts

    def test_results_table_rows(self):
        ensemble = run_ensemble(small_jobs(replicas=2, activations=3_000))
        assert len(ensemble.table.rows) == 2
        row = ensemble.table.rows[0]
        assert row["kind"] == "amoebot_trace"
        assert row["engine"] == "fast"
        assert row["n"] == 20

    def test_checkpoint_roundtrip_and_fingerprint(self, tmp_path):
        jobs = small_jobs(replicas=2, activations=3_000)
        first = run_ensemble(jobs, workers=1, checkpoint=tmp_path)
        resumed = run_ensemble(jobs, workers=1, checkpoint=tmp_path)
        assert resumed.loaded_from_checkpoint == 2
        for a, b in zip(first.results, resumed.results):
            assert a.trace.points == b.trace.points
        # A reseeded ensemble must be refused, not silently mixed in.
        stale = amoebot_replica_jobs(
            n=20, lam=4.0, activations=3_000, replicas=2, seed=999
        )
        renamed = [
            AmoebotJob(
                job_id=jobs[k].job_id,
                lam=stale[k].lam,
                seed=stale[k].seed,
                n=stale[k].n,
                activations=stale[k].activations,
                metadata=stale[k].metadata,
            )
            for k in range(2)
        ]
        with pytest.raises(SerializationError):
            run_ensemble(renamed, workers=1, checkpoint=tmp_path)

    def test_mixed_chain_and_amoebot_ensemble(self):
        from repro.runtime import replica_jobs

        jobs = small_jobs(replicas=1, activations=2_000) + replica_jobs(
            n=20, lam=4.0, iterations=2_000, replicas=1, seed=1
        )
        ensemble = run_ensemble(jobs, workers=1)
        kinds = {result.job.kind for result in ensemble.results}
        assert kinds == {"amoebot_trace", "trace"}


class TestSerialization:
    def test_amoebot_job_json_roundtrip(self):
        job = AmoebotJob(
            job_id="round-trip",
            lam=4.0,
            seed=11,
            initial_nodes=((0, 0), (1, 0), (2, 0)),
            activations=100,
            rates=((0, 2.0), (2, 0.5)),
            metadata={"replica": 1},
        )
        payload = job_to_json(job)
        assert payload["job_type"] == "amoebot"
        assert job_from_json(payload) == job

    def test_chain_job_payloads_stay_untagged(self):
        from repro.runtime import ChainJob

        job = ChainJob(job_id="plain", lam=4.0, seed=0, n=5, iterations=10)
        payload = job_to_json(job)
        assert "job_type" not in payload
        assert job_from_json(payload) == job
