"""Runtime integration of the separation/bridging jobs (weight kernels).

The extension chains must be first-class ensemble citizens: picklable
JSON-able jobs, results that are pure functions of the job (so parallel
runs are bit-identical to serial ones), checkpoint round-trips with
fingerprint refusal, and kernel metrics (homogeneous edges, gap
occupancy) flowing into the results table as columns.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, SerializationError
from repro.runtime import (
    BridgingJob,
    SeparationJob,
    bridging_gamma_sweep_jobs,
    execute_job,
    run_ensemble,
    separation_replica_jobs,
)
from repro.runtime.checkpoint import (
    EnsembleCheckpoint,
    chain_result_from_json,
    chain_result_to_json,
    job_from_json,
    job_to_json,
)


def separation_job(**overrides):
    params = dict(
        job_id="sep-test",
        lam=2.0,
        gamma=1.5,
        seed=5,
        n=20,
        iterations=2000,
        record_every=1000,
    )
    params.update(overrides)
    return SeparationJob(**params)


def bridging_job(**overrides):
    params = dict(
        job_id="bridge-test",
        lam=4.0,
        gamma=2.0,
        seed=5,
        n=20,
        arm_length=4,
        iterations=2000,
        record_every=1000,
    )
    params.update(overrides)
    return BridgingJob(**params)


class TestJobValidation:
    def test_separation_job_validation(self):
        with pytest.raises(ConfigurationError):
            separation_job(job_id="bad id!")
        with pytest.raises(ConfigurationError):
            separation_job(engine="warp")
        with pytest.raises(ConfigurationError):
            separation_job(coloring="stripes")
        with pytest.raises(ConfigurationError):
            separation_job(n=None)  # neither n nor colored_nodes
        with pytest.raises(ConfigurationError):
            separation_job(colored_nodes=((0, 0, 0), (1, 0, 1)))  # both given
        with pytest.raises(ConfigurationError):
            separation_job(seed="five")
        with pytest.raises(ConfigurationError):
            separation_job(iterations=-1)
        with pytest.raises(ConfigurationError):
            separation_job(kind="trace")

    def test_bridging_job_validation(self):
        with pytest.raises(ConfigurationError):
            bridging_job(engine="warp")
        with pytest.raises(ConfigurationError):
            bridging_job(arm_length=1)
        with pytest.raises(ConfigurationError):
            bridging_job(n=0)
        with pytest.raises(ConfigurationError):
            bridging_job(kind="trace")

    def test_explicit_colored_nodes_start(self):
        job = separation_job(
            n=None,
            colored_nodes=((0, 0, 0), (1, 0, 1), (2, 0, 0)),
            iterations=100,
        )
        colored = job.build_initial()
        assert colored.color_counts() == {0: 2, 1: 1}


class TestExecution:
    def test_separation_result_carries_kernel_metrics(self):
        result = execute_job(separation_job())
        assert result.iterations == 2000
        assert set(result.extra) == {
            "accepted_swaps",
            "initial_homogeneous_edges",
            "final_homogeneous_edges",
            "final_heterogeneous_edges",
        }
        row = result.row()
        assert row["final_homogeneous_edges"] == result.extra["final_homogeneous_edges"]
        assert row["kind"] == "separation_trace"
        # Swap rejections are tallied alongside the movement reasons.
        assert "swap_rejected" in result.rejection_counts

    def test_bridging_result_carries_bridge_metrics(self):
        result = execute_job(bridging_job())
        assert result.iterations == 2000
        assert set(result.extra) == {"final_gap_occupancy", "final_anchor_path_length"}
        row = result.row()
        assert row["final_gap_occupancy"] == result.extra["final_gap_occupancy"]
        assert row["kind"] == "bridging_trace"

    @pytest.mark.parametrize("make_job", [separation_job, bridging_job])
    def test_results_are_pure_functions_of_the_job(self, make_job):
        first = execute_job(make_job())
        second = execute_job(make_job())
        assert first.trace.points == second.trace.points
        assert first.rejection_counts == second.rejection_counts
        assert first.extra == second.extra

    def test_engines_agree_on_job_results(self):
        """All three engines yield identical numbers for equal jobs."""
        for make_job in (separation_job, bridging_job):
            fast = execute_job(make_job(engine="fast"))
            for engine in ("reference", "vector"):
                other = execute_job(make_job(engine=engine))
                assert fast.trace.points == other.trace.points, engine
                assert fast.rejection_counts == other.rejection_counts, engine
                assert fast.extra == other.extra, engine


class TestEnsembles:
    def test_mixed_extension_ensemble_parallel_matches_serial(self):
        jobs = (
            separation_replica_jobs(
                n=16, lam=2.0, gamma=2.0, iterations=1500, replicas=2, seed=1
            )
            + bridging_gamma_sweep_jobs(
                n=15, lam=4.0, gammas=[1.0, 4.0], iterations=1500, arm_length=4, seed=2
            )
        )
        serial = run_ensemble(jobs, workers=1)
        parallel = run_ensemble(jobs, workers=2)
        for a, b in zip(serial.results, parallel.results):
            assert a.job.job_id == b.job.job_id
            assert a.trace.points == b.trace.points
            assert a.extra == b.extra
        assert serial.table.rows == [r.row() for r in serial.results]

    def test_builder_seeding_is_stable_under_growth(self):
        small = separation_replica_jobs(
            n=10, lam=2.0, gamma=2.0, iterations=10, replicas=2, seed=3
        )
        large = separation_replica_jobs(
            n=10, lam=2.0, gamma=2.0, iterations=10, replicas=4, seed=3
        )
        assert [job.seed for job in small] == [job.seed for job in large[:2]]

    def test_gamma_sweep_metrics_flow_into_the_table(self):
        jobs = bridging_gamma_sweep_jobs(
            n=20, lam=4.0, gammas=[1.0, 6.0], iterations=8000, arm_length=4, seed=0
        )
        ensemble = run_ensemble(jobs)
        tolerant = ensemble.table.where(gamma_index=0)
        averse = ensemble.table.where(gamma_index=1)
        assert averse.mean("final_gap_occupancy") <= tolerant.mean(
            "final_gap_occupancy"
        )


class TestSerialization:
    @pytest.mark.parametrize("make_job", [separation_job, bridging_job])
    def test_job_json_round_trip(self, make_job):
        job = make_job()
        payload = job_to_json(job)
        assert payload["job_type"] in ("separation", "bridging")
        assert job_from_json(payload) == job

    def test_colored_nodes_round_trip(self):
        job = separation_job(n=None, colored_nodes=((0, 0, 0), (1, 0, 1)), iterations=5)
        assert job_from_json(job_to_json(job)) == job

    @pytest.mark.parametrize("make_job", [separation_job, bridging_job])
    def test_result_round_trip_preserves_extra(self, make_job):
        result = execute_job(make_job(iterations=500))
        restored = chain_result_from_json(chain_result_to_json(result))
        assert restored.extra == result.extra
        assert restored.trace.points == result.trace.points
        assert restored.job == result.job

    def test_checkpoint_resume_and_fingerprint_refusal(self, tmp_path):
        checkpoint = EnsembleCheckpoint(tmp_path)
        jobs = [separation_job(iterations=500), bridging_job(iterations=500)]
        first = run_ensemble(jobs, checkpoint=checkpoint)
        assert first.loaded_from_checkpoint == 0
        resumed = run_ensemble(jobs, checkpoint=checkpoint)
        assert resumed.loaded_from_checkpoint == 2
        for a, b in zip(first.results, resumed.results):
            assert a.trace.points == b.trace.points
            assert a.extra == b.extra
        # A reseeded job with the same id must be refused, not mixed in.
        with pytest.raises(SerializationError):
            run_ensemble(
                [dataclasses.replace(jobs[0], seed=99)], checkpoint=checkpoint
            )


class TestCheckpointExtraCompat:
    """Kernel metrics must survive checkpoint resume across document vintages."""

    def test_empty_extra_is_written_explicitly(self):
        """New documents always state their kernel metrics, even when empty."""
        result = execute_job(separation_job(iterations=100))
        stripped = dataclasses.replace(result, extra={})
        payload = chain_result_to_json(stripped)
        assert payload["extra"] == {}
        assert chain_result_from_json(payload).extra == {}

    def test_null_extra_loads_as_empty(self):
        result = execute_job(separation_job(iterations=100))
        payload = chain_result_to_json(result)
        payload["extra"] = None
        assert chain_result_from_json(payload).extra == {}

    def test_numpy_scalar_extra_round_trips_as_plain_int(self, tmp_path):
        """An engine counter leaking through as numpy.int64 must not abort
        the atomic checkpoint write."""
        result = execute_job(bridging_job(iterations=100))
        poisoned = dataclasses.replace(
            result, extra={"final_gap_occupancy": np.int64(7)}
        )
        checkpoint = EnsembleCheckpoint(tmp_path)
        checkpoint.store(poisoned)
        loaded = checkpoint.load(poisoned.job)
        assert loaded.extra == {"final_gap_occupancy": 7}
        assert type(loaded.extra["final_gap_occupancy"]) is int

    def test_legacy_document_resumes_next_to_new_document(self, tmp_path):
        """A pre-extra document mixed with a new one must keep the kernel-metric
        columns in the resumed results table."""
        checkpoint = EnsembleCheckpoint(tmp_path)
        jobs = (
            separation_job(job_id="old-doc", seed=1, iterations=500),
            separation_job(job_id="new-doc", seed=2, iterations=500),
        )
        run_ensemble(jobs, checkpoint=checkpoint)
        path = checkpoint.path_for("old-doc")
        payload = json.loads(path.read_text())
        del payload["extra"]  # simulate a document written before extra existed
        path.write_text(json.dumps(payload))
        resumed = run_ensemble(jobs, checkpoint=checkpoint)
        assert resumed.loaded_from_checkpoint == 2
        table = resumed.table
        assert "final_homogeneous_edges" in table.columns
        old_row, new_row = table.rows
        assert "final_homogeneous_edges" not in old_row  # data was never stored
        final = new_row["final_homogeneous_edges"]
        assert isinstance(final, int)
        # Split/apply helpers keep working over the mixed rows.
        assert table.column("final_homogeneous_edges") == [None, final]
        assert table.mean("final_homogeneous_edges") == float(final)
