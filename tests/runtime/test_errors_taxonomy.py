"""Pickle round-trips for the job-error taxonomy.

Job errors are born on whichever side of a process boundary observed the
failure — a worker raising, the supervisor recording a timeout — and may
be re-raised on the other, so every class must survive pickling with its
fields and message intact.
"""

import pickle

import pytest

from repro.errors import (
    EnsembleAborted,
    JobError,
    JobTimeout,
    ReproError,
    WorkerCrashed,
)
from repro.runtime.supervision import InjectedFault


def roundtrip(error):
    return pickle.loads(pickle.dumps(error))


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(JobError, ReproError)
        assert issubclass(JobTimeout, JobError)
        assert issubclass(WorkerCrashed, JobError)
        assert issubclass(InjectedFault, JobError)
        assert issubclass(EnsembleAborted, ReproError)
        # An ensemble abort is *not* a per-job error: catching JobError
        # around a single job must not swallow a whole-run abort.
        assert not issubclass(EnsembleAborted, JobError)

    def test_job_error_roundtrip(self):
        clone = roundtrip(JobError("chain diverged"))
        assert isinstance(clone, JobError)
        assert str(clone) == "chain diverged"

    def test_job_timeout_roundtrip(self):
        error = JobTimeout("sweep-i2-lam4-r0", 1.5)
        assert "sweep-i2-lam4-r0" in str(error)
        assert "1.5s" in str(error)
        clone = roundtrip(error)
        assert isinstance(clone, JobTimeout)
        assert clone.job_id == "sweep-i2-lam4-r0"
        assert clone.timeout_seconds == 1.5
        assert str(clone) == str(error)

    def test_worker_crashed_roundtrip(self):
        error = WorkerCrashed("replica-lam4-r1", exitcode=-9)
        assert "exitcode -9" in str(error)
        clone = roundtrip(error)
        assert isinstance(clone, WorkerCrashed)
        assert clone.job_id == "replica-lam4-r1"
        assert clone.exitcode == -9
        assert str(clone) == str(error)

    def test_worker_crashed_without_exitcode(self):
        clone = roundtrip(WorkerCrashed("j"))
        assert clone.exitcode is None
        assert "exitcode" not in str(clone)

    def test_injected_fault_roundtrip(self):
        clone = roundtrip(InjectedFault("injected fault: job 'a' attempt 1"))
        assert isinstance(clone, InjectedFault)
        assert str(clone) == "injected fault: job 'a' attempt 1"

    def test_ensemble_aborted_roundtrip_drops_partial(self):
        """The message pickles; partial results do not ride the exception.

        Completed work crosses process boundaries via the checkpoint, not
        via an exception object, so ``partial``/``failures`` reset to
        their empty defaults on unpickle.
        """
        error = EnsembleAborted("job 'x' failed after 3 attempt(s)")
        error.partial = object()  # stand-in for an EnsembleResult
        error.failures = [object()]
        clone = roundtrip(error)
        assert isinstance(clone, EnsembleAborted)
        assert str(clone) == str(error)
        assert clone.partial is None
        assert clone.failures == []

    @pytest.mark.parametrize(
        "error",
        [
            JobTimeout("j", 2.0),
            WorkerCrashed("j", 17),
            InjectedFault("boom"),
        ],
    )
    def test_job_errors_caught_as_job_error(self, error):
        with pytest.raises(JobError):
            raise error


class TestServiceTaxonomy:
    """The service-layer errors cross the wire; they must pickle too."""

    def test_hierarchy(self):
        from repro.errors import (
            ProtocolError,
            ServerBusy,
            ServiceError,
            ServiceUnavailable,
        )

        assert issubclass(ServiceError, ReproError)
        for cls in (ProtocolError, ServerBusy, ServiceUnavailable):
            assert issubclass(cls, ServiceError)
            # Catching JobError around a single job must not swallow a
            # transport-layer failure.
            assert not issubclass(cls, JobError)

    def test_protocol_error_roundtrip(self):
        from repro.errors import ProtocolError

        clone = roundtrip(ProtocolError("bad frame", recoverable=True))
        assert isinstance(clone, ProtocolError)
        assert clone.recoverable is True
        assert str(clone) == "bad frame"
        assert roundtrip(ProtocolError("eof")).recoverable is False

    def test_server_busy_roundtrip(self):
        from repro.errors import ServerBusy

        error = ServerBusy("queue_full", queued=64, capacity=64)
        assert "queue_full" in str(error)
        clone = roundtrip(error)
        assert isinstance(clone, ServerBusy)
        assert (clone.reason, clone.queued, clone.capacity) == ("queue_full", 64, 64)
        assert str(clone) == str(error)

    def test_service_unavailable_roundtrip(self):
        from repro.errors import ServiceUnavailable

        clone = roundtrip(ServiceUnavailable("no server at :7341", attempts=10))
        assert isinstance(clone, ServiceUnavailable)
        assert clone.attempts == 10
        assert str(clone) == "no server at :7341"
