"""Fault-model coverage: crash + Byzantine behaviour pinned across engines.

A committed golden fixture (``tests/amoebot/golden/amoebot_faults_*.json``)
pins one seeded run that marks Byzantine particles, crashes a fraction
mid-run through the standard injectors, and keeps running — and asserts
the resulting state is identical under ``engine="reference"`` and
``engine="fast"``.  This is the regression net for the part of the
distributed runtime that only exists at this layer (the chain engines
have no faults).
"""

import json
from pathlib import Path

import pytest

from repro.amoebot import AMOEBOT_ENGINES, create_system
from repro.amoebot.faults import ByzantineFlagLiar, CrashFaultInjector, FaultPlan
from repro.lattice.shapes import line

FIXTURE_PATH = Path(__file__).parent / "golden" / "amoebot_faults_line24_lam4_seed1.json"


def run_fault_scenario(engine):
    """The pinned scenario: byzantine injection, then crashes, then a long run."""
    with FIXTURE_PATH.open() as fh:
        golden = json.load(fh)
    system = create_system(
        line(golden["n"]),
        lam=golden["lam"],
        seed=golden["seed"],
        engine=engine,
        draw_block=golden["draw_block"],
    )
    byzantine = ByzantineFlagLiar(fraction=golden["byzantine_fraction"], seed=golden["byzantine_seed"])
    crash = CrashFaultInjector(
        fraction=golden["crash_fraction"],
        after_activations=golden["crash_after"],
        seed=golden["crash_seed"],
    )
    plan = FaultPlan(injectors=[byzantine, crash])
    plan.run(system, activations=golden["activations"], check_every=golden["check_every"])
    return golden, system, byzantine, crash


@pytest.mark.parametrize("engine_name", sorted(AMOEBOT_ENGINES))
def test_fault_scenario_reproduces_golden_state(engine_name):
    golden, system, byzantine, crash = run_fault_scenario(engine_name)
    assert byzantine.byzantine_ids == golden["byzantine_ids"]
    assert crash.crashed_ids == golden["crashed_ids"]
    final = golden["final"]
    assert system.tails() == [tuple(node) for node in final["tails"]]
    assert system.heads() == [
        None if node is None else tuple(node) for node in final["heads"]
    ]
    assert system.flags() == final["flags"]
    assert system.perimeter() == final["perimeter"]
    assert system.scheduler.time == final["time"]
    stats = system.stats
    assert [
        stats.activations,
        stats.expansions,
        stats.completed_moves,
        stats.aborted_moves,
        stats.idle_activations,
    ] == final["stats"]


def test_fault_scenario_identical_between_engines():
    """Beyond the fixture: every fault marker agrees particle-by-particle."""
    _, reference, _, _ = run_fault_scenario("reference")
    _, fast, _, _ = run_fault_scenario("fast")
    for pid in fast.particle_ids:
        assert fast.is_crashed(pid) == reference.particles[pid].crashed
        assert fast.is_byzantine(pid) == reference.particles[pid].byzantine
    assert fast.occupied_nodes() == reference.occupied_nodes()
    assert fast.configuration == reference.configuration


@pytest.mark.parametrize("engine_name", sorted(AMOEBOT_ENGINES))
def test_crashed_particles_stay_fixed(engine_name):
    system = create_system(line(12), lam=4.0, seed=10, engine=engine_name)
    system.crash(3)
    position = system.tails()[3]
    system.run(15_000)
    assert system.tails()[3] == position
    assert system.configuration.is_connected


@pytest.mark.parametrize("engine_name", sorted(AMOEBOT_ENGINES))
def test_byzantine_particles_keep_invariants(engine_name):
    system = create_system(line(15), lam=4.0, seed=12, engine=engine_name)
    injector = ByzantineFlagLiar(fraction=0.2, seed=2)
    injector.maybe_inject(system)
    assert len(injector.byzantine_ids) == 3
    system.run(15_000)
    configuration = system.configuration
    assert configuration.is_connected
    assert configuration.is_hole_free
    assert configuration.n == 15
