"""Tests for particle state handling and the Poisson scheduler."""

import numpy as np
import pytest

from repro.amoebot.particle import Particle, ParticleState
from repro.amoebot.scheduler import Activation, PoissonScheduler
from repro.errors import SchedulerError


class TestParticle:
    def test_contracted_initially(self):
        particle = Particle(identifier=0, tail=(0, 0))
        assert particle.is_contracted
        assert not particle.is_expanded
        assert particle.state is ParticleState.CONTRACTED
        assert particle.occupied_nodes() == ((0, 0),)

    def test_expand_and_contract_forward(self):
        particle = Particle(identifier=0, tail=(0, 0))
        particle.expand((1, 0))
        assert particle.is_expanded
        assert set(particle.occupied_nodes()) == {(0, 0), (1, 0)}
        particle.contract_forward()
        assert particle.is_contracted
        assert particle.tail == (1, 0)

    def test_expand_and_contract_back(self):
        particle = Particle(identifier=0, tail=(0, 0))
        particle.expand((0, 1))
        particle.contract_back()
        assert particle.tail == (0, 0)
        assert particle.is_contracted

    def test_invalid_transitions(self):
        particle = Particle(identifier=0, tail=(0, 0))
        with pytest.raises(SchedulerError):
            particle.contract_forward()
        with pytest.raises(SchedulerError):
            particle.expand((2, 0))  # not adjacent
        particle.expand((1, 0))
        with pytest.raises(SchedulerError):
            particle.expand((0, 1))  # already expanded


class TestPoissonScheduler:
    def test_rejects_empty_system(self):
        with pytest.raises(SchedulerError):
            PoissonScheduler([])

    def test_rejects_non_positive_rates(self):
        with pytest.raises(SchedulerError):
            PoissonScheduler([0, 1], rates={0: 0.0})

    def test_activations_advance_time_monotonically(self):
        scheduler = PoissonScheduler(list(range(5)), seed=0)
        times = [scheduler.next().time for _ in range(200)]
        assert times == sorted(times)
        assert scheduler.activations == 200

    def test_uniform_rates_give_roughly_uniform_activation_shares(self):
        scheduler = PoissonScheduler(list(range(4)), seed=1)
        counts = {i: 0 for i in range(4)}
        for _ in range(8000):
            counts[scheduler.next().particle_id] += 1
        shares = np.array(list(counts.values())) / 8000
        assert np.all(np.abs(shares - 0.25) < 0.03)

    def test_unequal_rates_bias_activation_shares(self):
        scheduler = PoissonScheduler([0, 1], rates={0: 4.0, 1: 1.0}, seed=2)
        counts = {0: 0, 1: 0}
        for _ in range(5000):
            counts[scheduler.next().particle_id] += 1
        assert counts[0] > 3 * counts[1]

    def test_round_completion_requires_every_particle(self):
        scheduler = PoissonScheduler(list(range(6)), seed=3)
        seen_in_round = set()
        while scheduler.rounds_completed == 0:
            activation = scheduler.next()
            assert activation.round_index == 0
            seen_in_round.add(activation.particle_id)
        assert seen_in_round == set(range(6))

    def test_fairness_over_many_activations(self):
        """Every particle is activated again after any point in time (fairness)."""
        scheduler = PoissonScheduler(list(range(10)), seed=4)
        for _ in range(500):
            scheduler.next()
        # Coupon-collector: a round of 10 particles needs ~29 activations on
        # average, so 500 activations complete well over 10 rounds.
        assert scheduler.rounds_completed >= 10

    def test_pause_and_resume(self):
        scheduler = PoissonScheduler([0, 1, 2], seed=5)
        scheduler.pause(0)
        ids = {scheduler.next().particle_id for _ in range(200)}
        assert 0 not in ids
        scheduler.resume(0)
        ids = {scheduler.next().particle_id for _ in range(200)}
        assert 0 in ids

    def test_all_paused_raises(self):
        scheduler = PoissonScheduler([0], seed=6)
        scheduler.pause(0)
        with pytest.raises(SchedulerError):
            scheduler.next()

    def test_unknown_particle_operations_raise(self):
        scheduler = PoissonScheduler([0], seed=7)
        with pytest.raises(SchedulerError):
            scheduler.pause(99)
        with pytest.raises(SchedulerError):
            scheduler.resume(99)

    def test_reproducibility(self):
        a = PoissonScheduler(list(range(3)), seed=8)
        b = PoissonScheduler(list(range(3)), seed=8)
        for _ in range(100):
            assert a.next() == b.next()

    def test_non_uniform_rates_seeded_regression(self):
        """Pin the non-uniform (searchsorted race) path for one seed.

        The uniform and non-uniform paths consume the generator
        differently (integer winners vs uniforms over cumulative rates),
        so this guards the branch the uniform-rate tests never touch.
        """
        scheduler = PoissonScheduler([0, 1, 2], rates={0: 4.0, 2: 0.5}, seed=42)
        winners = [scheduler.next().particle_id for _ in range(20)]
        assert winners == [1, 0, 1, 0, 0, 2, 1, 1, 0, 0, 0, 2, 0, 1, 0, 0, 0, 0, 1, 0]
        twin = PoissonScheduler([0, 1, 2], rates={0: 4.0, 2: 0.5}, seed=42)
        replay = [twin.next() for _ in range(20)]
        assert [activation.particle_id for activation in replay] == winners
        assert replay[-1].time == scheduler.time

    def test_non_uniform_rates_round_tracking(self):
        scheduler = PoissonScheduler([0, 1, 2], rates={0: 10.0, 1: 0.2}, seed=9)
        seen = set()
        while scheduler.rounds_completed == 0:
            seen.add(scheduler.next().particle_id)
        assert seen == {0, 1, 2}

    def test_rounds_resume_after_all_particles_were_paused(self):
        """Pausing everyone stalls the round cycle; resuming must restart it."""
        scheduler = PoissonScheduler([0, 1, 2], seed=44)
        for _ in range(20):
            scheduler.next()
        for pid in (0, 1, 2):
            scheduler.pause(pid)
        scheduler.resume(0)
        before = scheduler.rounds_completed
        for _ in range(5):
            scheduler.next()
        assert scheduler.rounds_completed > before

    def test_pause_discards_block_deterministically(self):
        """Crashing mid-block discards the unread remainder identically
        for every consumer, so fault runs stay reproducible."""

        def run(pause_at):
            scheduler = PoissonScheduler(list(range(5)), seed=33)
            out = []
            for k in range(300):
                if k == pause_at:
                    scheduler.pause(2)
                out.append(scheduler.next().particle_id)
            return out

        assert run(50) == run(50)
        assert 2 not in run(0)
