"""Tests for particle state handling and the Poisson scheduler."""

import numpy as np
import pytest

from repro.amoebot.particle import Particle, ParticleState
from repro.amoebot.scheduler import Activation, PoissonScheduler
from repro.errors import SchedulerError


class TestParticle:
    def test_contracted_initially(self):
        particle = Particle(identifier=0, tail=(0, 0))
        assert particle.is_contracted
        assert not particle.is_expanded
        assert particle.state is ParticleState.CONTRACTED
        assert particle.occupied_nodes() == ((0, 0),)

    def test_expand_and_contract_forward(self):
        particle = Particle(identifier=0, tail=(0, 0))
        particle.expand((1, 0))
        assert particle.is_expanded
        assert set(particle.occupied_nodes()) == {(0, 0), (1, 0)}
        particle.contract_forward()
        assert particle.is_contracted
        assert particle.tail == (1, 0)

    def test_expand_and_contract_back(self):
        particle = Particle(identifier=0, tail=(0, 0))
        particle.expand((0, 1))
        particle.contract_back()
        assert particle.tail == (0, 0)
        assert particle.is_contracted

    def test_invalid_transitions(self):
        particle = Particle(identifier=0, tail=(0, 0))
        with pytest.raises(SchedulerError):
            particle.contract_forward()
        with pytest.raises(SchedulerError):
            particle.expand((2, 0))  # not adjacent
        particle.expand((1, 0))
        with pytest.raises(SchedulerError):
            particle.expand((0, 1))  # already expanded


class TestPoissonScheduler:
    def test_rejects_empty_system(self):
        with pytest.raises(SchedulerError):
            PoissonScheduler([])

    def test_rejects_non_positive_rates(self):
        with pytest.raises(SchedulerError):
            PoissonScheduler([0, 1], rates={0: 0.0})

    def test_activations_advance_time_monotonically(self):
        scheduler = PoissonScheduler(list(range(5)), seed=0)
        times = [scheduler.next().time for _ in range(200)]
        assert times == sorted(times)
        assert scheduler.activations == 200

    def test_uniform_rates_give_roughly_uniform_activation_shares(self):
        scheduler = PoissonScheduler(list(range(4)), seed=1)
        counts = {i: 0 for i in range(4)}
        for _ in range(8000):
            counts[scheduler.next().particle_id] += 1
        shares = np.array(list(counts.values())) / 8000
        assert np.all(np.abs(shares - 0.25) < 0.03)

    def test_unequal_rates_bias_activation_shares(self):
        scheduler = PoissonScheduler([0, 1], rates={0: 4.0, 1: 1.0}, seed=2)
        counts = {0: 0, 1: 0}
        for _ in range(5000):
            counts[scheduler.next().particle_id] += 1
        assert counts[0] > 3 * counts[1]

    def test_round_completion_requires_every_particle(self):
        scheduler = PoissonScheduler(list(range(6)), seed=3)
        seen_in_round = set()
        while scheduler.rounds_completed == 0:
            activation = scheduler.next()
            assert activation.round_index == 0
            seen_in_round.add(activation.particle_id)
        assert seen_in_round == set(range(6))

    def test_fairness_over_many_activations(self):
        """Every particle is activated again after any point in time (fairness)."""
        scheduler = PoissonScheduler(list(range(10)), seed=4)
        for _ in range(500):
            scheduler.next()
        # Coupon-collector: a round of 10 particles needs ~29 activations on
        # average, so 500 activations complete well over 10 rounds.
        assert scheduler.rounds_completed >= 10

    def test_pause_and_resume(self):
        scheduler = PoissonScheduler([0, 1, 2], seed=5)
        scheduler.pause(0)
        ids = {scheduler.next().particle_id for _ in range(200)}
        assert 0 not in ids
        scheduler.resume(0)
        ids = {scheduler.next().particle_id for _ in range(200)}
        assert 0 in ids

    def test_all_paused_raises(self):
        scheduler = PoissonScheduler([0], seed=6)
        scheduler.pause(0)
        with pytest.raises(SchedulerError):
            scheduler.next()

    def test_unknown_particle_operations_raise(self):
        scheduler = PoissonScheduler([0], seed=7)
        with pytest.raises(SchedulerError):
            scheduler.pause(99)
        with pytest.raises(SchedulerError):
            scheduler.resume(99)

    def test_reproducibility(self):
        a = PoissonScheduler(list(range(3)), seed=8)
        b = PoissonScheduler(list(range(3)), seed=8)
        for _ in range(100):
            assert a.next() == b.next()
