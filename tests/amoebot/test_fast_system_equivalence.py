"""Differential-testing harness for the two distributed amoebot engines.

The contract mirrors the chain engines': given equal seeds (and equal
``draw_block``), the object simulator (:class:`AmoebotSystem`) and the
table-driven engine (:class:`FastAmoebotSystem`) must deliver the same
activation sequence, choose the same actions, and traverse bit-identical
system states — uniform and non-uniform rates, crash and Byzantine faults
included.  The harness checks lockstep per-activation agreement, the
batched ``run()`` path against both stepping and the other engine, mixed
``run``/``step``/``run_rounds`` interleavings, and a committed golden
trace (``tests/amoebot/golden/``) that pins the shared protocol itself.
"""

import json
from pathlib import Path

import pytest

from repro.amoebot import AMOEBOT_ENGINES, AmoebotSystem, FastAmoebotSystem, create_system
from repro.amoebot.local_algorithm import ContractBack, ContractForward, Expand, Idle
from repro.errors import ConfigurationError
from repro.lattice.shapes import line, random_connected, spiral
from repro.rng import make_rng

GOLDEN_PATH = Path(__file__).parent / "golden" / "amoebot_line30_lam4_seed0.json"


def state_signature(system):
    """Everything that must agree between engines, as one comparable tuple."""
    return (
        system.tails(),
        system.heads(),
        system.flags(),
        system.stats,
        system.scheduler.time,
        system.scheduler.activations,
        system.scheduler.rounds_completed,
        system.perimeter(),
        system.occupied_nodes(),
    )


def action_tag(action):
    """A compact comparable/serializable encoding of an Action."""
    if isinstance(action, Expand):
        return ["expand", action.target[0], action.target[1]]
    if isinstance(action, ContractForward):
        return ["forward", None, None]
    if isinstance(action, ContractBack):
        return ["back", None, None]
    assert isinstance(action, Idle)
    return ["idle", None, None]


def make_pair(initial, lam, seed, rates=None):
    return (
        AmoebotSystem(initial, lam=lam, seed=seed, rates=rates),
        FastAmoebotSystem(initial, lam=lam, seed=seed, rates=rates),
    )


class TestLockstep:
    def test_lockstep_actions_and_states_line(self):
        reference, fast = make_pair(line(30), lam=4.0, seed=0)
        for activation in range(20_000):
            a = reference.step()
            b = fast.step()
            assert action_tag(a) == action_tag(b), f"diverged at activation {activation}"
            if activation % 500 == 0:
                assert state_signature(reference) == state_signature(fast)
        assert state_signature(reference) == state_signature(fast)

    def test_lockstep_with_non_uniform_rates(self):
        rates = {i: (5.0 if i % 4 == 0 else 0.5) for i in range(24)}
        reference, fast = make_pair(line(24), lam=3.0, seed=7, rates=rates)
        for _ in range(15_000):
            assert action_tag(reference.step()) == action_tag(fast.step())
        assert state_signature(reference) == state_signature(fast)

    def test_lockstep_spiral_start(self):
        reference, fast = make_pair(spiral(36), lam=6.0, seed=13)
        for _ in range(15_000):
            reference.step()
            fast.step()
        assert state_signature(reference) == state_signature(fast)


class TestBatchedRunPath:
    """run() takes a different code path (span loop) than step(); both must agree."""

    def test_fast_run_equals_fast_step(self):
        stepped = FastAmoebotSystem(line(25), lam=4.0, seed=3)
        batched = FastAmoebotSystem(line(25), lam=4.0, seed=3)
        for _ in range(40_000):
            stepped.step()
        batched.run(40_000)
        assert state_signature(stepped) == state_signature(batched)

    def test_fast_run_equals_reference_run(self):
        reference, fast = make_pair(line(25), lam=4.0, seed=3)
        reference.run(40_000)
        fast.run(40_000)
        assert state_signature(reference) == state_signature(fast)

    def test_mixed_run_step_run_rounds_interleaving(self):
        reference, fast = make_pair(line(20), lam=4.0, seed=21)
        for system in (reference, fast):
            system.run(1_234)
            for _ in range(77):
                system.step()
            system.run_rounds(5)
            system.run(4_000)
            system.run_rounds(2)
        assert state_signature(reference) == state_signature(fast)

    def test_run_rounds_stops_on_same_activation(self):
        reference, fast = make_pair(line(15), lam=4.0, seed=4)
        reference.run_rounds(8)
        fast.run_rounds(8)
        assert reference.stats.activations == fast.stats.activations
        assert reference.scheduler.rounds_completed == fast.scheduler.rounds_completed == 8
        assert state_signature(reference) == state_signature(fast)


class TestGridReallocation:
    """A small unbiased blob random-walks into the guard band, so these are
    the tests that actually exercise ``_reallocate`` and the hot loop's
    local-rebinding block (the compressing scenarios above never drift)."""

    def test_drifting_blob_reallocates_and_run_equals_step(self):
        batched = FastAmoebotSystem(line(4), lam=1.0, seed=6)
        origin = (batched.grid.origin_x, batched.grid.origin_y)
        stepped = FastAmoebotSystem(line(4), lam=1.0, seed=6)
        batched.run(400_000)
        for _ in range(400_000):
            stepped.step()
        # The walk must actually have forced at least one reallocation,
        # otherwise this test is vacuous.
        assert (batched.grid.origin_x, batched.grid.origin_y) != origin
        assert (stepped.grid.origin_x, stepped.grid.origin_y) != origin
        assert state_signature(batched) == state_signature(stepped)

    @pytest.mark.slow
    def test_drifting_blob_matches_reference_across_reallocations(self):
        reference, fast = make_pair(line(4), lam=1.0, seed=6)
        origin = (fast.grid.origin_x, fast.grid.origin_y)
        reference.run(300_000)
        fast.run(300_000)
        assert (fast.grid.origin_x, fast.grid.origin_y) != origin
        assert state_signature(reference) == state_signature(fast)


class TestFaultEquivalence:
    def test_crashes_mid_run(self):
        reference, fast = make_pair(spiral(40), lam=5.0, seed=11)
        for system in (reference, fast):
            system.run(5_000)
            system.crash(3)
            system.crash(15)
            system.run(20_000)
        assert state_signature(reference) == state_signature(fast)
        assert fast.is_crashed(3) and fast.is_crashed(15)

    def test_byzantine_mid_run(self):
        reference, fast = make_pair(line(30), lam=4.0, seed=17)
        for system in (reference, fast):
            system.run(4_000)
            system.mark_byzantine(7)
            system.mark_byzantine(21)
            system.run(20_000)
        assert state_signature(reference) == state_signature(fast)
        assert fast.is_byzantine(7) and fast.is_byzantine(21)

    def test_crash_of_expanded_particle_contracts_back_identically(self):
        reference, fast = make_pair(line(12), lam=4.0, seed=2)
        for system in (reference, fast):
            # Step until some particle is expanded, then crash it.
            while not system.expanded_particles():
                system.step()
            victim = system.expanded_particles()[0]
            system.crash(victim)
            system.run(5_000)
        assert state_signature(reference) == state_signature(fast)


class TestRandomizedInvariants:
    """Randomized sweep: the fast engine preserves the simulator's invariants."""

    @pytest.mark.parametrize("trial", range(12))
    def test_invariants_random_starts(self, trial):
        rng = make_rng(1000 + trial)
        n = int(rng.integers(10, 45))
        lam = float(rng.uniform(1.5, 6.0))
        seed = int(rng.integers(0, 2**31))
        initial = random_connected(n, seed=seed)
        system = FastAmoebotSystem(initial, lam=lam, seed=seed)
        system.run(int(rng.integers(3_000, 12_000)))
        configuration = system.configuration
        assert configuration.n == n
        assert configuration.is_connected
        tails = system.tails()
        heads = [node for node in system.heads() if node is not None]
        assert len(set(tails)) == n
        assert set(tails).isdisjoint(heads)
        assert system.occupied_nodes() == set(tails) | set(heads)
        assert system.stats.expansions == (
            system.stats.completed_moves
            + system.stats.aborted_moves
            + len(system.expanded_particles())
        )

    @pytest.mark.parametrize("trial", range(6))
    def test_randomized_cross_engine_runs(self, trial):
        rng = make_rng(2000 + trial)
        n = int(rng.integers(10, 35))
        lam = float(rng.uniform(2.0, 6.0))
        seed = int(rng.integers(0, 2**31))
        activations = int(rng.integers(2_000, 9_000))
        reference, fast = make_pair(line(n), lam=lam, seed=seed)
        reference.run(activations)
        fast.run(activations)
        assert state_signature(reference) == state_signature(fast)

    def test_byte_planes_stay_consistent_with_particle_state(self):
        system = FastAmoebotSystem(line(30), lam=4.0, seed=5)
        system.run(25_000)
        grid = system.grid
        tails = {grid.flat_index(node) for node in system.tails()}
        heads = {
            grid.flat_index(node) for node in system.heads() if node is not None
        }
        expanded_tails = {
            grid.flat_index(system.tails()[i]) for i in system.expanded_particles()
        }
        size = grid.width * grid.height
        for flat in range(size):
            occupied = flat in tails or flat in heads
            assert bool(grid.cells[flat]) == occupied
            assert bool(system._eff[flat]) == (flat in tails)
            assert bool(system._expn[flat]) == (
                flat in heads or flat in expanded_tails
            )


class TestFactory:
    def test_create_system_selects_engines(self):
        assert isinstance(
            create_system(line(5), lam=4.0, seed=0, engine="reference"), AmoebotSystem
        )
        assert isinstance(
            create_system(line(5), lam=4.0, seed=0, engine="fast"), FastAmoebotSystem
        )
        assert set(AMOEBOT_ENGINES) == {"reference", "fast"}

    def test_create_system_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            create_system(line(5), lam=4.0, engine="warp")

    def test_fast_engine_validates_like_reference(self):
        from repro.lattice.configuration import ParticleConfiguration

        with pytest.raises(ConfigurationError):
            FastAmoebotSystem(ParticleConfiguration([(0, 0), (5, 5)]), lam=4.0)
        with pytest.raises(ConfigurationError):
            FastAmoebotSystem(line(5), lam=0.0)
        with pytest.raises(ConfigurationError):
            FastAmoebotSystem(line(5), lam=4.0).run(-1)
        with pytest.raises(ConfigurationError):
            FastAmoebotSystem(line(5), lam=4.0).run_rounds(-1)


class TestGoldenTrace:
    """The committed fixture pins the shared activation protocol itself."""

    @pytest.fixture(scope="class")
    def golden(self):
        with GOLDEN_PATH.open() as fh:
            return json.load(fh)

    @pytest.mark.parametrize("engine_name", sorted(AMOEBOT_ENGINES))
    def test_engine_reproduces_golden_trajectory(self, golden, engine_name):
        system = create_system(
            line(golden["n"]),
            lam=golden["lam"],
            seed=golden["seed"],
            engine=engine_name,
            draw_block=golden["draw_block"],
        )
        for index, expected in enumerate(golden["trajectory"]):
            particle_id, round_index, kind, tx, ty = expected
            before = system.scheduler.activations
            action = system.step()
            assert action_tag(action) == [kind, tx, ty], (
                f"{engine_name} diverged from the golden trace at activation "
                f"{index}: got {action_tag(action)}, expected {[kind, tx, ty]}"
            )
            assert system.scheduler.activations == before + 1
        assert system.scheduler.rounds_completed == golden["rounds_after_trajectory"]

    @pytest.mark.parametrize("engine_name", sorted(AMOEBOT_ENGINES))
    def test_engine_run_reproduces_golden_final_state(self, golden, engine_name):
        system = create_system(
            line(golden["n"]),
            lam=golden["lam"],
            seed=golden["seed"],
            engine=engine_name,
            draw_block=golden["draw_block"],
        )
        system.run(golden["activations"])
        final = golden["final"]
        assert system.tails() == [tuple(node) for node in final["tails"]]
        assert [
            None if node is None else tuple(node) for node in final["heads"]
        ] == system.heads()
        assert system.flags() == final["flags"]
        assert system.perimeter() == final["perimeter"]
        assert system.scheduler.time == final["time"]
        assert system.scheduler.rounds_completed == final["rounds_completed"]
        stats = system.stats
        assert [
            stats.activations,
            stats.expansions,
            stats.completed_moves,
            stats.aborted_moves,
            stats.idle_activations,
        ] == final["stats"]
