"""Tests for the distributed amoebot system running Algorithm A."""

import pytest

from repro.amoebot.faults import ByzantineFlagLiar, CrashFaultInjector, FaultPlan
from repro.amoebot.local_algorithm import CompressionAlgorithm, Idle, NeighborhoodView
from repro.amoebot.system import AmoebotSystem
from repro.errors import AlgorithmError, ConfigurationError
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.geometry import min_perimeter
from repro.lattice.shapes import line, spiral


class TestSetup:
    def test_requires_connected_start(self):
        with pytest.raises(ConfigurationError):
            AmoebotSystem(ParticleConfiguration([(0, 0), (5, 5)]), lam=4.0)

    def test_initial_configuration_round_trips(self):
        system = AmoebotSystem(line(8), lam=4.0, seed=0)
        assert system.configuration == line(8)
        assert system.n == 8
        assert system.occupied_nodes() == line(8).nodes
        assert system.expanded_particles() == []

    def test_algorithm_validates_lambda(self):
        with pytest.raises(AlgorithmError):
            CompressionAlgorithm(lam=0.0)


class TestDynamicsAndInvariants:
    def test_tail_configuration_stays_connected_and_hole_free(self):
        system = AmoebotSystem(line(20), lam=4.0, seed=1)
        for _ in range(10):
            system.run(2000)
            configuration = system.configuration
            assert configuration.is_connected
            assert configuration.is_hole_free
            assert configuration.n == 20

    def test_occupancy_map_consistency(self):
        system = AmoebotSystem(line(15), lam=4.0, seed=2)
        system.run(10_000)
        occupied = system.occupied_nodes()
        tails = {p.tail for p in system.particles.values()}
        heads = {p.head for p in system.particles.values() if p.head is not None}
        assert occupied == tails | heads
        assert len(tails) == 15
        assert tails.isdisjoint(heads)

    def test_expanded_particles_have_no_expanded_neighbors_with_true_flag(self):
        """The flag mechanism serializes movements within each neighborhood."""
        from repro.lattice.triangular import neighbors

        system = AmoebotSystem(line(20), lam=4.0, seed=3)
        system.run(5000)
        flagged = [
            p for p in system.particles.values() if p.is_expanded and p.flag
        ]
        for particle in flagged:
            adjacent_nodes = set()
            for node in particle.occupied_nodes():
                adjacent_nodes.update(neighbors(node))
            adjacent_nodes -= set(particle.occupied_nodes())
            for other in system.particles.values():
                if other.identifier == particle.identifier or not other.is_expanded:
                    continue
                # No other expanded particle may have started its expansion
                # after this flagged particle did and still overlap its
                # neighborhood with a True flag of its own.
                if other.flag:
                    assert not (set(other.occupied_nodes()) & adjacent_nodes)

    def test_compression_progresses_under_strong_bias(self):
        system = AmoebotSystem(line(30), lam=5.0, seed=4)
        start = system.perimeter()
        system.run(120_000)
        assert system.perimeter() < start
        assert system.stats.completed_moves > 0
        assert system.compression_ratio() < start / min_perimeter(30)

    def test_run_rounds(self):
        system = AmoebotSystem(line(10), lam=4.0, seed=5)
        system.run_rounds(5)
        assert system.scheduler.rounds_completed >= 5

    def test_stats_accounting(self):
        system = AmoebotSystem(line(10), lam=4.0, seed=6)
        system.run(3000)
        stats = system.stats
        assert stats.activations == 3000
        assert stats.expansions >= stats.completed_moves
        assert stats.expansions == stats.completed_moves + stats.aborted_moves + len(
            system.expanded_particles()
        )

    def test_parameter_validation(self):
        system = AmoebotSystem(line(5), lam=4.0, seed=7)
        with pytest.raises(ConfigurationError):
            system.run(-1)
        with pytest.raises(ConfigurationError):
            system.run_rounds(-1)


class TestEquivalenceWithChain:
    def test_distributed_and_centralized_runs_compress_similarly(self):
        """Section 3.2's equivalence, checked statistically: both engines drive the
        perimeter of the same starting line into the same ballpark."""
        from repro.core.compression import CompressionSimulation

        chain_sim = CompressionSimulation.from_line(25, lam=5.0, seed=8)
        chain_sim.run(60_000, record_every=60_000)
        system = AmoebotSystem(line(25), lam=5.0, seed=8)
        # Roughly two activations are needed per chain iteration (expand + contract).
        system.run(180_000)
        chain_perimeter = chain_sim.chain.perimeter()
        system_perimeter = system.perimeter()
        start = 2 * 25 - 2
        assert chain_perimeter < 0.75 * start
        assert system_perimeter < 0.75 * start

    def test_perimeter_ignores_heads_of_expanded_particles(self):
        system = AmoebotSystem(line(12), lam=4.0, seed=9)
        system.run(2000)
        # The configuration (tails only) always has exactly n nodes even
        # while some particles are expanded.
        assert system.configuration.n == 12


class TestFaults:
    def test_crashed_particles_never_move_again(self):
        system = AmoebotSystem(line(12), lam=4.0, seed=10)
        system.crash(3)
        position = system.particles[3].tail
        system.run(20_000)
        assert system.particles[3].tail == position
        assert system.configuration.is_connected

    def test_crash_fault_injector(self):
        system = AmoebotSystem(line(20), lam=4.0, seed=11)
        injector = CrashFaultInjector(fraction=0.2, after_activations=500, seed=1)
        plan = FaultPlan(injectors=[injector])
        plan.run(system, activations=40_000)
        assert len(injector.crashed_ids) == 4
        assert all(system.particles[i].crashed for i in injector.crashed_ids)
        # The healthy particles keep compressing around the crashed ones.
        assert system.perimeter() < 2 * 20 - 2
        assert system.configuration.is_connected

    def test_byzantine_particles_do_not_break_invariants(self):
        system = AmoebotSystem(line(15), lam=4.0, seed=12)
        injector = ByzantineFlagLiar(fraction=0.2, seed=2)
        injector.maybe_inject(system)
        assert len(injector.byzantine_ids) == 3
        system.run(20_000)
        configuration = system.configuration
        assert configuration.is_connected
        assert configuration.is_hole_free
        assert configuration.n == 15

    def test_injector_validation(self):
        with pytest.raises(AlgorithmError):
            CrashFaultInjector(fraction=1.5)
        with pytest.raises(AlgorithmError):
            ByzantineFlagLiar(fraction=-0.1)

    def test_injection_is_idempotent(self):
        system = AmoebotSystem(line(10), lam=4.0, seed=13)
        injector = CrashFaultInjector(fraction=0.1, seed=3)
        assert injector.maybe_inject(system)
        assert not injector.maybe_inject(system)
