"""Kill/restart injection harness: the service's robustness contract, pinned.

A subprocess server is ``os._exit``-killed at 22 seeded-random points
mid-ensemble — after the N-th committed execution (modeling a power cut
at the worst instant: result committed, nobody told) and after the N-th
accepted submission *before its acknowledgement* (the idempotent-
resubmission window).  One blocking client drives a 64-job ensemble
straight through every crash.  The assertions are the acceptance
criteria verbatim:

* the final :class:`ResultsTable` is bit-identical (modulo wall clock)
  to an uninterrupted direct :class:`EnsembleRunner` run;
* zero lost completed jobs, and **no completed job ever re-executes** —
  proven against the fsynced execution log every server generation
  appends to (each job id may appear at most once across all
  generations);
* the final server generation drains gracefully on SIGTERM.

Slow lane: ~22 interpreter restarts plus the ensemble itself.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.runtime import replica_jobs, run_ensemble
from repro.runtime.supervision import RetryPolicy
from repro.service import KILL_EXIT_CODE, ServiceClient

pytestmark = pytest.mark.slow

JOBS = 64
N = 20
ITERATIONS = 300_000
SEED = 2016

#: Seeded, reproducible kill schedule: 8 submission-window kills first
#: (they need fresh submissions to trigger), then 14 execution kills.
#: 22 kill points >= the 20 the acceptance criterion demands.
def kill_schedule():
    rng = random.Random(SEED)
    submits = [("submit", rng.randint(1, 2)) for _ in range(8)]
    execs = [("exec", rng.randint(1, 2)) for _ in range(14)]
    return submits + execs


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(tmp_path, port, generation, kill=None, env=None):
    argv = [
        sys.executable, "-m", "repro.service",
        "--service-dir", str(tmp_path / "svc"),
        "--port", str(port),
        "--generation", str(generation),
        "--execution-log", str(tmp_path / "executions.log"),
        "--queue-capacity", "128",
        "--client-quota", "128",
    ]
    if kill is not None:
        mode, count = kill
        flag = "--kill-after-executions" if mode == "exec" else "--kill-after-submissions"
        argv += [flag, str(count)]
    return subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_listening(port, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError(f"no server listening on :{port} within {timeout}s")


def test_kill_restart_reconverges_bit_identical(tmp_path):
    jobs = replica_jobs(n=N, lam=4.0, iterations=ITERATIONS, seed=SEED, replicas=JOBS)
    schedule = kill_schedule()
    assert len(schedule) >= 20

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    port = free_port()

    # The client rides through every restart on deterministic backoff.
    client = ServiceClient(
        "127.0.0.1",
        port,
        client_id="harness",
        reconnect=RetryPolicy(
            max_attempts=14, backoff_seconds=0.05, backoff_multiplier=2.0, jitter=0.1
        ),
    )
    outcome = {}

    def drive():
        try:
            outcome["run"] = client.run_jobs(jobs, timeout=600, max_busy_retries=10_000)
        except BaseException as exc:
            outcome["error"] = exc

    first = start_server(tmp_path, port, generation=0, kill=schedule[0], env=env)
    wait_listening(port)
    driver = threading.Thread(target=drive)
    driver.start()

    kills = 0
    proc = first
    try:
        for generation, kill in enumerate(schedule[1:], start=1):
            returncode = proc.wait(timeout=120)
            assert returncode == KILL_EXIT_CODE, (
                f"generation {generation - 1} exited {returncode}, expected "
                f"harness kill; stderr:\n{proc.stderr.read()}"
            )
            kills += 1
            proc = start_server(tmp_path, port, generation=generation, kill=kill, env=env)
        # The last scheduled kill, then the clean final generation.
        returncode = proc.wait(timeout=120)
        assert returncode == KILL_EXIT_CODE, proc.stderr.read()
        kills += 1
        proc = start_server(tmp_path, port, generation=len(schedule), kill=None, env=env)
        wait_listening(port)

        driver.join(timeout=300)
        assert not driver.is_alive(), "client never finished after the final restart"
        assert "error" not in outcome, outcome.get("error")

        # Graceful SIGTERM drain of the survivor.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        client.close()

    assert kills == len(schedule) >= 20

    # --- Zero lost jobs, bit-identical reconvergence ------------------- #
    run = outcome["run"]
    assert len(run.results) == JOBS and not run.failures
    direct = run_ensemble(jobs)
    strip = lambda rows: [
        {k: v for k, v in row.items() if k != "wall_seconds"} for row in rows
    ]
    assert strip(run.table.rows) == strip(direct.table.rows)

    # --- No completed job ever re-executed ----------------------------- #
    # Every committed execution appends one fsynced "<generation> <job_id>"
    # line *before* any kill check; a completed job re-executing in a
    # later generation would have to append a second line.
    log_lines = (tmp_path / "executions.log").read_text().splitlines()
    executed = Counter(line.split()[1] for line in log_lines if line.strip())
    repeats = {job_id: count for job_id, count in executed.items() if count > 1}
    assert not repeats, f"completed jobs re-executed: {repeats}"
    # And the log spans many generations (the kills really interleaved).
    generations_seen = {int(line.split()[0]) for line in log_lines if line.strip()}
    assert len(generations_seen) >= 5
