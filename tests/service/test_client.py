"""Client resilience: deterministic backoff, reconnect, restart-surviving waits.

These tests restart in-process servers underneath a live client — same
service directory, same port — and assert the client's view never
glitches: requests are retried against the new incarnation, resubmission
is a no-op, and ``wait()`` returns the same completions an uninterrupted
server would have delivered.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceUnavailable
from repro.runtime import replica_jobs
from repro.runtime.supervision import RetryPolicy
from repro.service import ServerConfig, ServiceClient, SimulationServer

from conftest import TEST_RECONNECT


def make_jobs(replicas=2, iterations=400):
    return replica_jobs(n=16, lam=4.0, iterations=iterations, seed=21, replicas=replicas)


def test_reconnect_backoff_is_deterministic():
    policy = RetryPolicy(max_attempts=6, backoff_seconds=0.05, jitter=0.2, seed=3)
    schedule_a = [policy.backoff_before(k, "reconnect:client-a") for k in range(1, 7)]
    schedule_b = [policy.backoff_before(k, "reconnect:client-a") for k in range(1, 7)]
    assert schedule_a == schedule_b  # no live RNG anywhere
    assert schedule_a[0] == 0.0  # first attempt is immediate
    assert all(later > earlier for earlier, later in zip(schedule_a[1:], schedule_a[2:]))
    # A different client key jitters differently (no thundering herd).
    other = [policy.backoff_before(k, "reconnect:client-b") for k in range(1, 7)]
    assert other != schedule_a


def test_unreachable_server_raises_service_unavailable():
    client = ServiceClient(
        "127.0.0.1",
        1,  # reserved port, nothing listens
        reconnect=RetryPolicy(max_attempts=3, backoff_seconds=0.01, jitter=0.0),
    )
    with pytest.raises(ServiceUnavailable) as excinfo:
        client.status()
    assert excinfo.value.attempts == 3


def test_client_survives_server_restart_between_requests(tmp_path, connect):
    config = ServerConfig(service_dir=tmp_path / "svc")
    first = SimulationServer(config)
    host, port = first.start()
    client = ServiceClient(host, port, reconnect=TEST_RECONNECT)
    jobs = make_jobs(replicas=2)
    client.submit(jobs[0])
    client.wait([jobs[0].job_id], timeout=60)
    first.stop()

    # Same directory, same port: the next incarnation.
    second = SimulationServer(ServerConfig(service_dir=tmp_path / "svc", port=port))
    second.start()
    try:
        # The dead socket is discovered and replaced transparently.
        reply = client.status(jobs[0].job_id)
        assert reply["state"] == "completed"
        assert client.welcome["jobs_completed_on_disk"] == 1
        # Resubmission of the completed job is an idempotent no-op.
        ack = client.submit(jobs[0])
        assert ack["duplicate"] is True and ack["state"] == "completed"
        # And its result is still bit-identical from the checkpoint.
        result = client.result(jobs[0].job_id)
        assert result.job.job_id == jobs[0].job_id
    finally:
        second.stop()
        client.close()


def test_wait_survives_restart_mid_ensemble(tmp_path):
    """Kill the server while wait() is blocked; a restart completes the wait."""
    jobs = make_jobs(replicas=4, iterations=300_000)
    config = ServerConfig(service_dir=tmp_path / "svc", batch_limit=1)
    first = SimulationServer(config)
    host, port = first.start()
    client = ServiceClient(
        host,
        port,
        reconnect=RetryPolicy(max_attempts=10, backoff_seconds=0.05, jitter=0.1),
    )
    for job in jobs:
        client.submit(job)

    states = {}
    error = []

    def waiter():
        try:
            states.update(client.wait([j.job_id for j in jobs], timeout=120))
        except BaseException as exc:  # pragma: no cover - surfaced below
            error.append(exc)

    thread = threading.Thread(target=waiter)
    thread.start()
    # Stop the first incarnation while jobs are still running.
    first.stop()
    second = SimulationServer(ServerConfig(service_dir=tmp_path / "svc", port=port))
    second.start()
    try:
        thread.join(timeout=120)
        assert not thread.is_alive(), "wait() never completed after the restart"
        assert not error, error
        assert states == {job.job_id: "completed" for job in jobs}
    finally:
        second.stop()
        client.close()
