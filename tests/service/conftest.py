"""Fixtures for the service tests: in-process servers on loopback sockets."""

from __future__ import annotations

import contextlib

import pytest

from repro.runtime.supervision import RetryPolicy
from repro.service import ServerConfig, ServiceClient, SimulationServer

#: Fast client for tests: short reconnect schedule so a genuinely dead
#: server fails the test in ~a second instead of half a minute.
TEST_RECONNECT = RetryPolicy(
    max_attempts=5, backoff_seconds=0.02, backoff_multiplier=2.0, jitter=0.1
)


@pytest.fixture
def service(tmp_path):
    """A factory for started in-process servers (all stopped at teardown)."""
    servers = []

    def start(**overrides):
        config = ServerConfig(service_dir=tmp_path / "svc", **overrides)
        server = SimulationServer(config)
        server.start()
        servers.append(server)
        return server

    yield start
    for server in servers:
        with contextlib.suppress(Exception):
            server.stop()


@pytest.fixture
def connect():
    """A factory for clients against a started server (closed at teardown)."""
    clients = []

    def make(server, client_id="test-client", **overrides):
        host, port = server.address
        overrides.setdefault("reconnect", TEST_RECONNECT)
        client = ServiceClient(host, port, client_id=client_id, **overrides)
        clients.append(client)
        return client

    yield make
    for client in clients:
        client.close()
