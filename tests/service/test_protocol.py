"""Wire-protocol unit tests over socketpairs: framing, negotiation, rejection.

The contract under test is the recoverable/fatal split: a malformed
*payload* inside a well-framed message must be answerable (the server
keeps the connection), while a broken *framing* layer must be fatal —
after a truncated prefix or mid-frame EOF the stream cannot be
resynchronized.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.errors import ProtocolError
from repro.service import protocol


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def test_round_trip(pair):
    left, right = pair
    frame = {"type": "status", "job_id": "replica-lam4-r0", "nested": {"a": [1, 2]}}
    protocol.send_frame(left, frame)
    assert protocol.read_frame(right) == frame


def test_clean_eof_reads_as_none(pair):
    left, right = pair
    left.close()
    assert protocol.read_frame(right) is None


def test_eof_inside_prefix_is_fatal(pair):
    left, right = pair
    left.sendall(b"\x00\x00")  # half a length prefix
    left.close()
    with pytest.raises(ProtocolError) as excinfo:
        protocol.read_frame(right)
    assert not excinfo.value.recoverable


def test_eof_inside_payload_is_fatal(pair):
    left, right = pair
    payload = protocol.encode_frame({"type": "status"})
    left.sendall(payload[:-3])  # drop the frame's tail
    left.close()
    with pytest.raises(ProtocolError) as excinfo:
        protocol.read_frame(right)
    assert not excinfo.value.recoverable


def test_zero_length_frame_is_fatal(pair):
    left, right = pair
    left.sendall(struct.pack(">I", 0))
    with pytest.raises(ProtocolError) as excinfo:
        protocol.read_frame(right)
    assert not excinfo.value.recoverable


def test_oversized_length_prefix_is_fatal(pair):
    left, right = pair
    left.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError) as excinfo:
        protocol.read_frame(right)
    assert not excinfo.value.recoverable
    assert "corrupt length prefix" in str(excinfo.value)


def test_invalid_json_is_recoverable(pair):
    left, right = pair
    body = b"{ not json"
    left.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError) as excinfo:
        protocol.read_frame(right)
    assert excinfo.value.recoverable
    # The framing layer survived: a following valid frame still reads.
    protocol.send_frame(left, {"type": "status"})
    assert protocol.read_frame(right) == {"type": "status"}


def test_non_object_json_is_recoverable(pair):
    left, right = pair
    body = b'[1, 2, 3]'
    left.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError) as excinfo:
        protocol.read_frame(right)
    assert excinfo.value.recoverable


def test_oversized_outgoing_frame_refused():
    with pytest.raises(ProtocolError):
        protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})


# --------------------------------------------------------------------- #
# Request validation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "frame",
    [
        {},  # no type
        {"type": 7},  # non-string type
        {"type": "reboot"},  # unknown type
        {"type": "hello"},  # no versions
        {"type": "hello", "versions": "1"},  # versions not a list
        {"type": "hello", "versions": [1, "x"]},  # non-integer version
        {"type": "submit"},  # no job
        {"type": "submit", "job": "replica-0"},  # job not an object
        {"type": "fetch"},  # no job_id
        {"type": "cancel", "job_id": 3},  # job_id not a string
    ],
)
def test_validate_request_rejects_recoverably(frame):
    with pytest.raises(ProtocolError) as excinfo:
        protocol.validate_request(frame)
    assert excinfo.value.recoverable


@pytest.mark.parametrize(
    "frame, expected",
    [
        ({"type": "hello", "versions": [1]}, "hello"),
        ({"type": "submit", "job": {"job_id": "a"}}, "submit"),
        ({"type": "status"}, "status"),
        ({"type": "status", "job_id": "a"}, "status"),
        ({"type": "fetch", "job_id": "a"}, "fetch"),
        ({"type": "cancel", "job_id": "a"}, "cancel"),
        ({"type": "subscribe"}, "subscribe"),
        ({"type": "drain"}, "drain"),
    ],
)
def test_validate_request_accepts(frame, expected):
    assert protocol.validate_request(frame) == expected


# --------------------------------------------------------------------- #
# Version negotiation
# --------------------------------------------------------------------- #
def test_negotiation_picks_highest_shared():
    assert protocol.negotiate_version([1]) == 1
    assert protocol.negotiate_version([1, 2, 99]) == 1
    assert protocol.negotiate_version([0, 99]) is None
    assert protocol.negotiate_version([]) is None
