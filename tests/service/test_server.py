"""Server behavior over real loopback sockets: admission, backpressure, events.

The tier-1 smoke contract lives here too
(:func:`test_smoke_submit_round_trip`): start a server, submit a
fast-engine job, get the bit-exact result back through the wire.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.errors import ProtocolError, SerializationError, ServerBusy
from repro.runtime import job_to_json, replica_jobs, run_ensemble
from repro.service import protocol
from repro.service.state import ServiceState, job_fingerprint


def make_jobs(replicas=2, iterations=400, seed=5, n=16):
    return replica_jobs(n=n, lam=4.0, iterations=iterations, seed=seed, replicas=replicas)


def raw_connection(server, hello=True):
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.settimeout(5.0)
    if hello:
        protocol.send_frame(
            sock, {"type": "hello", "versions": [1], "client_id": "raw"}
        )
        welcome = protocol.read_frame(sock)
        assert welcome["type"] == "welcome"
    return sock


# --------------------------------------------------------------------- #
# Tier-1 smoke: server + client round trip
# --------------------------------------------------------------------- #
def test_smoke_submit_round_trip(service, connect):
    server = service()
    client = connect(server)
    jobs = make_jobs(replicas=2)
    run = client.run_jobs(jobs, timeout=60)
    assert len(run.results) == 2 and not run.failures
    direct = run_ensemble(jobs)
    for via_service, direct_result in zip(run.results, direct.results):
        assert via_service.job.job_id == direct_result.job.job_id
        assert via_service.iterations == direct_result.iterations
        assert via_service.accepted_moves == direct_result.accepted_moves
        assert via_service.rejection_counts == direct_result.rejection_counts
    # Whole-table equality modulo wall clock.
    strip = lambda rows: [
        {k: v for k, v in row.items() if k != "wall_seconds"} for row in rows
    ]
    assert strip(run.table.rows) == strip(direct.table.rows)


# --------------------------------------------------------------------- #
# Negotiation
# --------------------------------------------------------------------- #
def test_unsupported_version_answered_not_disconnected(service):
    server = service()
    sock = raw_connection(server, hello=False)
    protocol.send_frame(sock, {"type": "hello", "versions": [99]})
    reply = protocol.read_frame(sock)
    assert reply["type"] == "error" and reply["code"] == "unsupported_version"
    assert reply["versions"] == [1]
    # Connection still alive: negotiate properly on the same socket.
    protocol.send_frame(sock, {"type": "hello", "versions": [1]})
    assert protocol.read_frame(sock)["type"] == "welcome"
    sock.close()


def test_requests_before_hello_are_refused(service):
    server = service()
    sock = raw_connection(server, hello=False)
    protocol.send_frame(sock, {"type": "status"})
    reply = protocol.read_frame(sock)
    assert reply["type"] == "error" and reply["code"] == "hello_required"
    sock.close()


# --------------------------------------------------------------------- #
# Malformed frames never kill the connection loop
# --------------------------------------------------------------------- #
def test_malformed_payloads_keep_connection_alive(service):
    server = service()
    sock = raw_connection(server)
    import struct

    # Bad JSON in a well-formed frame.
    body = b"{ nope"
    sock.sendall(struct.pack(">I", len(body)) + body)
    reply = protocol.read_frame(sock)
    assert reply["type"] == "error" and reply["code"] == "protocol"
    # Unknown request type.
    protocol.send_frame(sock, {"type": "make-coffee"})
    reply = protocol.read_frame(sock)
    assert reply["type"] == "error" and reply["code"] == "protocol"
    # Submit without a job object.
    protocol.send_frame(sock, {"type": "submit"})
    reply = protocol.read_frame(sock)
    assert reply["type"] == "error" and reply["code"] == "protocol"
    # And the connection still works.
    protocol.send_frame(sock, {"type": "status"})
    assert protocol.read_frame(sock)["type"] == "status_reply"
    sock.close()


def test_undecodable_job_payload_is_bad_job(service, connect):
    server = service()
    client = connect(server)
    with pytest.raises(SerializationError):
        client.submit({"job_id": "x", "not_a_field": True})


# --------------------------------------------------------------------- #
# Idempotent submission
# --------------------------------------------------------------------- #
def test_duplicate_submission_is_deduplicated(service, connect):
    server = service()
    client = connect(server)
    job = make_jobs(replicas=1)[0]
    first = client.submit(job)
    assert first["duplicate"] is False
    again = client.submit(job)
    assert again["duplicate"] is True
    assert again["fingerprint"] == first["fingerprint"]
    client.wait([job.job_id], timeout=60)
    # Resubmission after completion still acknowledges idempotently.
    after = client.submit(job)
    assert after["duplicate"] is True and after["state"] == "completed"


def test_conflicting_job_id_is_refused(service, connect):
    server = service()
    client = connect(server)
    job, other = make_jobs(replicas=1, seed=5)[0], make_jobs(replicas=1, seed=6)[0]
    payload = job_to_json(other)
    payload["job_id"] = job.job_id  # same id, different specification
    client.submit(job)
    with pytest.raises(SerializationError, match="different job specification"):
        client.submit(payload)


def test_fingerprint_is_canonical(service):
    job = make_jobs(replicas=1)[0]
    payload = job_to_json(job)
    assert job_fingerprint(payload) == job_fingerprint(dict(reversed(payload.items())))


# --------------------------------------------------------------------- #
# Backpressure: explicit busy frames, never silent drops
# --------------------------------------------------------------------- #
def test_queue_full_backpressure(tmp_path):
    state = ServiceState(tmp_path / "svc", queue_capacity=2, client_quota=10)
    jobs = make_jobs(replicas=3)
    state.submit(job_to_json(jobs[0]), "c")
    state.submit(job_to_json(jobs[1]), "c")
    with pytest.raises(ServerBusy) as excinfo:
        state.submit(job_to_json(jobs[2]), "c")
    assert excinfo.value.reason == "queue_full"
    assert excinfo.value.queued == 2 and excinfo.value.capacity == 2


def test_client_quota_backpressure(tmp_path):
    state = ServiceState(tmp_path / "svc", queue_capacity=100, client_quota=2)
    jobs = make_jobs(replicas=3)
    state.submit(job_to_json(jobs[0]), "greedy")
    state.submit(job_to_json(jobs[1]), "greedy")
    with pytest.raises(ServerBusy) as excinfo:
        state.submit(job_to_json(jobs[2]), "greedy")
    assert excinfo.value.reason == "quota_exceeded"
    # Another client still gets in: the quota is per client.
    record, duplicate = state.submit(job_to_json(jobs[2]), "patient")
    assert not duplicate and record.state == "queued"


def test_saturating_client_receives_server_busy(service, connect):
    # A paused executor (drain the batch thread by grabbing the queue
    # capacity) makes saturation deterministic: capacity 3, then the 4th
    # submission must come back as an explicit busy frame.
    server = service(queue_capacity=3, batch_limit=1)
    # Stall the executor with slow-ish jobs so the queue actually fills.
    jobs = make_jobs(replicas=6, iterations=300_000, n=40)
    client = connect(server)
    saw_busy = None
    submitted = 0
    for job in jobs:
        try:
            client.submit(job)
            submitted += 1
        except ServerBusy as busy:
            saw_busy = busy
            break
    assert saw_busy is not None, "queue never filled; got no backpressure"
    assert saw_busy.reason in ("queue_full", "quota_exceeded")
    assert saw_busy.capacity > 0


def test_draining_refuses_new_submissions(service, connect):
    server = service()
    client = connect(server)
    jobs = make_jobs(replicas=2)
    client.submit(jobs[0])
    client.drain()
    with pytest.raises(ServerBusy) as excinfo:
        client.submit(jobs[1])
    assert excinfo.value.reason == "draining"
    # The already-admitted job still completes.
    assert client.wait([jobs[0].job_id], timeout=60) == {jobs[0].job_id: "completed"}
    assert server.wait_drained(timeout=30)


# --------------------------------------------------------------------- #
# Cancel / status / fetch
# --------------------------------------------------------------------- #
def test_cancel_queued_job(service, connect):
    # batch_limit=1 plus a long-running head job keeps the tail queued.
    server = service(batch_limit=1)
    jobs = make_jobs(replicas=3, iterations=200_000, n=40)
    client = connect(server)
    for job in jobs:
        client.submit(job)
    state = client.cancel(jobs[2].job_id)
    assert state in ("cancelled", "running", "completed")
    if state == "cancelled":
        assert client.status(jobs[2].job_id)["state"] == "cancelled"
    assert client.cancel("no-such-job") == "unknown"


def test_fetch_unfinished_is_not_found(service, connect):
    server = service()
    client = connect(server)
    assert client.fetch_document("never-submitted") is None


def test_status_summary_counts(service, connect):
    server = service()
    client = connect(server)
    jobs = make_jobs(replicas=2)
    client.run_jobs(jobs, timeout=60)
    summary = client.status()
    assert summary["jobs"]["completed"] == 2
    assert summary["draining"] is False


# --------------------------------------------------------------------- #
# Event streaming
# --------------------------------------------------------------------- #
def test_subscriber_receives_result_events(service, connect):
    server = service()
    client = connect(server)
    jobs = make_jobs(replicas=2)
    sock = raw_connection(server)
    protocol.send_frame(
        sock, {"type": "subscribe", "job_ids": [job.job_id for job in jobs]}
    )
    assert protocol.read_frame(sock)["type"] == "subscribed"
    for job in jobs:
        client.submit(job)
    seen = set()
    deadline = time.monotonic() + 60
    while len(seen) < 2 and time.monotonic() < deadline:
        frame = protocol.read_frame(sock)
        assert frame is not None
        if frame.get("type") == "event" and frame.get("event") == "result":
            seen.add(frame["job_id"])
            assert frame["state"] == "completed"
    assert seen == {job.job_id for job in jobs}
    sock.close()


def test_late_subscriber_gets_catch_up_events(service, connect):
    server = service()
    client = connect(server)
    job = make_jobs(replicas=1)[0]
    client.submit(job)
    client.wait([job.job_id], timeout=60)
    sock = raw_connection(server)
    protocol.send_frame(sock, {"type": "subscribe", "job_ids": [job.job_id]})
    ack = protocol.read_frame(sock)
    assert ack["type"] == "subscribed" and ack["backlog"] == 1
    event = protocol.read_frame(sock)
    assert event["event"] == "result" and event["catch_up"] is True
    sock.close()
