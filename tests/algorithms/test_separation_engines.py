"""Differential harness + invariants + golden trace for the separation chain.

The separation chain of [9] runs on the shared engine stack via
:class:`repro.core.kernels.SeparationKernel`; this file holds it to the
same contract as the compression engines:

* **Lockstep differential:** seeded identically, the reference
  (hash-map), fast (grid + color byte plane), vector (numpy block
  pass with aux-plane conflict cut) and sharded (tile-parallel
  evaluation) engines must produce bit-identical trajectories — the
  same proposal each iteration, resolved the same way, movements and
  color swaps alike.
* **Block-run differential:** the vector engine's ``run()`` resolves
  whole blocks of proposals per numpy pass; it must land on the fast
  engine's exact state (occupancy *and* colors) at every chunk
  boundary, including chunks that straddle draw blocks and pass sizes,
  and across mixed ``step()``/``run()`` interleavings.
* **Randomized invariants:** per-color particle counts are conserved
  across swaps, connectivity is preserved, and the incrementally
  maintained edge count matches a from-scratch recomputation.
* **Golden trace:** a committed fixture pins the exact trajectory of a
  standard start, so silent protocol changes fail loudly — on all four
  engines.
"""

import json
from pathlib import Path

import pytest

from repro.algorithms.separation import ColoredConfiguration, SeparationMarkovChain
from repro.errors import ConfigurationError
from repro.lattice.shapes import line, random_connected, spiral

FIXTURE_PATH = Path(__file__).parent / "golden" / "separation_spiral24_lam2_gam1.5_seed0.json"

#: name -> (colored start, lam, gamma, swap_probability, lockstep iterations)
LOCKSTEP_CASES = {
    "halves_segregating": (
        ColoredConfiguration.halves(spiral(30)), 4.0, 3.0, 0.5, 4000,
    ),
    "random_integrating": (
        ColoredConfiguration.random_colors(spiral(24), seed=3), 4.0, 0.5, 0.5, 4000,
    ),
    "three_colors": (
        ColoredConfiguration.random_colors(random_connected(26, seed=8), num_colors=3, seed=4),
        2.0, 2.0, 0.4, 4000,
    ),
    "movement_only": (
        ColoredConfiguration.halves(line(20)), 4.0, 2.0, 0.0, 3000,
    ),
    "swap_only": (
        ColoredConfiguration.random_colors(spiral(20), seed=5), 4.0, 2.0, 1.0, 3000,
    ),
    "unbiased_drift": (
        ColoredConfiguration.random_colors(line(15), seed=6), 1.0, 1.0, 0.5, 3000,
    ),
}


def engine_quartet(colored, lam, gamma, swap_probability, seed):
    kwargs = dict(lam=lam, gamma=gamma, swap_probability=swap_probability, seed=seed)
    return tuple(
        SeparationMarkovChain(colored, engine=engine, **kwargs)
        for engine in ("reference", "fast", "vector", "sharded")
    )


def assert_same_final_state(fast, reference, context=""):
    assert fast.chain.occupied == reference.chain.occupied, context
    assert fast.chain.edge_count == reference.chain.edge_count, context
    assert fast.accepted_moves == reference.accepted_moves, context
    assert fast.accepted_swaps == reference.accepted_swaps, context
    assert fast.chain.rejection_counts == reference.chain.rejection_counts, context
    assert fast.chain.perimeter() == reference.chain.perimeter(), context
    assert fast.state.colors == reference.state.colors, context


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(LOCKSTEP_CASES))
def test_lockstep_trajectories_are_identical(name):
    colored, lam, gamma, swap_probability, iterations = LOCKSTEP_CASES[name]
    reference, fast, vector, sharded = engine_quartet(
        colored, lam, gamma, swap_probability, seed=7
    )
    for iteration in range(iterations):
        expected = reference.step()
        for label, chain in (("fast", fast), ("vector", vector), ("sharded", sharded)):
            actual = chain.step()
            assert actual == expected, (
                f"{name}: trajectories diverged at iteration {iteration}: "
                f"reference={expected}, {label}={actual}"
            )
    assert_same_final_state(fast, reference, name)
    assert_same_final_state(vector, reference, name)
    assert_same_final_state(sharded, reference, name)


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(LOCKSTEP_CASES))
def test_block_runs_match_lockstep_runs(name):
    """run(k) must consume the two-lane tape exactly like k step() calls —
    on the vector engine that is the numpy pass with the aux-plane
    conflict cut, checked against the fast engine's colors at every
    chunk boundary."""
    colored, lam, gamma, swap_probability, iterations = LOCKSTEP_CASES[name]
    reference, fast, vector, sharded = engine_quartet(
        colored, lam, gamma, swap_probability, seed=19
    )
    for chunk in (1, 37, 700, 1024, iterations):  # straddles draw blocks
        reference.run(chunk)
        fast.run(chunk)
        vector.run(chunk)
        sharded.run(chunk)
        assert fast.chain.edge_count == reference.chain.edge_count, f"{name}@{chunk}"
        assert vector.chain.edge_count == reference.chain.edge_count, f"{name}@{chunk}"
        assert vector.state.colors == fast.state.colors, f"{name}@{chunk}"
        assert sharded.state.colors == fast.state.colors, f"{name}@{chunk}"
    assert_same_final_state(fast, reference, name)
    assert_same_final_state(vector, reference, name)
    assert_same_final_state(sharded, reference, name)


@pytest.mark.slow
def test_vector_mixed_step_and_run_interleavings_match_fast():
    """step() (scalar path) and run() (numpy pass) share one tape; any
    interleaving must stay bit-identical to the fast engine."""
    colored = ColoredConfiguration.random_colors(spiral(24), seed=9)
    kwargs = dict(lam=3.0, gamma=1.5, swap_probability=0.5, seed=21)
    fast = SeparationMarkovChain(colored, engine="fast", **kwargs)
    vector = SeparationMarkovChain(colored, engine="vector", **kwargs)
    schedule = [
        ("run", 700), ("step", 5), ("run", 1), ("step", 1),
        ("run", 2048), ("step", 3), ("run", 333),
    ]
    for action, amount in schedule:
        if action == "run":
            fast.run(amount)
            vector.run(amount)
        else:
            for _ in range(amount):
                assert vector.step() == fast.step()
        assert vector.chain.edge_count == fast.chain.edge_count, (action, amount)
    assert_same_final_state(vector, fast)


@pytest.mark.slow
def test_long_run_with_grid_reallocation_matches_reference():
    """An unbiased colored blob drifts far enough to force grid re-centers
    (which rebuild the fast engine's color plane — and, on the vector
    engine, carry the colors across the re-centered grid)."""
    colored = ColoredConfiguration.random_colors(line(25), seed=2)
    reference, fast, vector, sharded = engine_quartet(colored, 1.0, 1.2, 0.5, seed=13)
    reference.run(150_000)
    fast.run(150_000)
    vector.run(150_000)
    sharded.run(150_000)
    assert_same_final_state(fast, reference)
    assert_same_final_state(vector, reference)
    assert_same_final_state(sharded, reference)


@pytest.mark.parametrize("engine", ["reference", "fast", "vector", "sharded"])
class TestInvariants:
    def test_color_counts_conserved_and_connectivity_preserved(self, engine):
        for seed in range(4):
            colored = ColoredConfiguration.random_colors(
                random_connected(22, seed=seed + 30), num_colors=2 + seed % 2, seed=seed
            )
            chain = SeparationMarkovChain(
                colored, lam=3.0, gamma=2.0, swap_probability=0.5,
                seed=seed, engine=engine,
            )
            chain.run(5000)
            state = chain.state
            assert state.color_counts() == colored.color_counts(), f"seed {seed}"
            assert state.configuration.is_connected, f"seed {seed}"

    def test_incremental_metrics_match_recomputation(self, engine):
        colored = ColoredConfiguration.halves(spiral(26))
        chain = SeparationMarkovChain(
            colored, lam=4.0, gamma=1.5, seed=11, engine=engine
        )
        for _ in range(6):
            chain.run(1500)
            configuration = chain.state.configuration
            assert chain.chain.edge_count == configuration.edge_count
            assert chain.chain.perimeter() == configuration.perimeter


class TestWrapper:
    def test_engine_selection_and_unknown_engine(self):
        colored = ColoredConfiguration.halves(line(8))
        assert SeparationMarkovChain(colored, 4.0, 2.0, engine="fast").engine == "fast"
        assert SeparationMarkovChain(colored, 4.0, 2.0, engine="vector").engine == "vector"
        with pytest.raises(ConfigurationError):
            SeparationMarkovChain(colored, 4.0, 2.0, engine="warp")

    def test_fast_engine_segregates_like_reference_did(self):
        """The headline behaviour of [9] on the production engine."""
        colored = ColoredConfiguration.random_colors(spiral(36), seed=2)
        chain = SeparationMarkovChain(colored, lam=4.0, gamma=4.0, seed=3, engine="fast")
        start = chain.state.homogeneous_edges()
        chain.run(25_000)
        assert chain.state.homogeneous_edges() > start
        assert chain.state.configuration.is_connected


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def golden(self):
        with FIXTURE_PATH.open() as fh:
            return json.load(fh)

    @pytest.fixture(scope="class")
    def start(self, golden):
        colored = ColoredConfiguration(
            {(x, y): c for x, y, c in golden["initial_colors"]}
        )
        # The fixture records how the start was built; rebuilding it from
        # the generator recipe must agree with the embedded colors.
        assert golden["start"] == "spiral24_random_colors_seed1"
        rebuilt = ColoredConfiguration.random_colors(spiral(24), num_colors=2, seed=1)
        assert rebuilt.colors == colored.colors
        return colored

    @pytest.mark.parametrize("engine", ["reference", "fast", "vector", "sharded"])
    def test_engine_reproduces_golden_trace(self, golden, start, engine):
        chain = SeparationMarkovChain(
            start,
            lam=golden["lam"],
            gamma=golden["gamma"],
            swap_probability=golden["swap_probability"],
            seed=golden["seed"],
            engine=engine,
            draw_block=golden["draw_block"],
        )
        for iteration, expected in enumerate(golden["trajectory"]):
            result = chain.step()
            actual = [
                result.move.source[0],
                result.move.source[1],
                result.move.target[0],
                result.move.target[1],
                result.edge_delta,
                result.reason,
            ]
            assert actual == expected, (
                f"{engine} engine diverged from the golden trace at iteration "
                f"{iteration}: got {actual}, expected {expected}"
            )
        final = golden["final"]
        assert chain.chain.edge_count == final["edge_count"]
        assert chain.chain.perimeter() == final["perimeter"]
        assert chain.accepted_moves == final["accepted_moves"]
        assert chain.accepted_swaps == final["accepted_swaps"]
        assert chain.chain.rejection_counts == final["rejection_counts"]
        assert chain.state.homogeneous_edges() == final["homogeneous_edges"]
        assert sorted(
            [x, y, c] for (x, y), c in chain.state.colors.items()
        ) == final["colors"]

    @pytest.mark.parametrize("engine", ["reference", "fast", "vector", "sharded"])
    def test_engine_run_reproduces_golden_final_state(self, golden, start, engine):
        """The batched run() paths land on the committed final state too."""
        chain = SeparationMarkovChain(
            start,
            lam=golden["lam"],
            gamma=golden["gamma"],
            swap_probability=golden["swap_probability"],
            seed=golden["seed"],
            engine=engine,
            draw_block=golden["draw_block"],
        )
        chain.run(golden["steps"])
        final = golden["final"]
        assert chain.chain.edge_count == final["edge_count"]
        assert chain.accepted_moves == final["accepted_moves"]
        assert chain.accepted_swaps == final["accepted_swaps"]
        assert chain.chain.rejection_counts == final["rejection_counts"]

    def test_golden_fixture_is_self_consistent(self, golden):
        assert golden["steps"] == len(golden["trajectory"]) == 250
        moved = sum(1 for entry in golden["trajectory"] if entry[5] == "moved")
        swapped = sum(1 for entry in golden["trajectory"] if entry[5] == "swapped")
        assert moved == golden["final"]["accepted_moves"]
        assert swapped == golden["final"]["accepted_swaps"]
        # The fixture exercises every outcome the chain can produce.
        reasons = {entry[5] for entry in golden["trajectory"]}
        assert reasons == {
            "moved",
            "swapped",
            "target_occupied",
            "five_neighbors",
            "property_failed",
            "metropolis_rejected",
            "swap_target_empty",
            "swap_same_color",
            "swap_rejected",
        }
