"""Tests for the extension algorithms and baselines."""

import pytest

from repro.algorithms.expansion import ExpansionSimulation
from repro.algorithms.hexagon_formation import hexagon_formation
from repro.algorithms.line_formation import moves_to_line
from repro.algorithms.phototaxing import PhototaxingSystem
from repro.algorithms.separation import ColoredConfiguration, SeparationMarkovChain
from repro.algorithms.shortcut_bridging import (
    BridgingMarkovChain,
    initial_bridge_configuration,
    v_shaped_terrain,
)
from repro.core.moves import is_valid_move, Move
from repro.errors import AlgorithmError, ConfigurationError
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.geometry import min_perimeter
from repro.lattice.shapes import line, random_connected, ring, spiral


class TestExpansionSimulation:
    def test_strict_mode_rejects_compression_lambdas(self):
        with pytest.raises(ConfigurationError):
            ExpansionSimulation.from_line(10, lam=4.0)
        ExpansionSimulation.from_line(10, lam=4.0, strict=False)  # does not raise

    def test_low_lambda_system_stays_expanded(self):
        simulation = ExpansionSimulation.from_line(30, lam=1.2, seed=0)
        simulation.run(40_000, record_every=40_000)
        assert simulation.expansion_ratio() > 0.5
        assert not simulation.is_alpha_compressed(1.5)

    def test_run_until_expanded(self):
        simulation = ExpansionSimulation.from_line(20, lam=1.0, seed=1)
        iterations = simulation.run_until_expanded(beta=0.6, max_iterations=50_000)
        assert iterations is not None
        with pytest.raises(ConfigurationError):
            simulation.run_until_expanded(beta=1.5, max_iterations=10)


class TestLineFormation:
    @pytest.mark.parametrize(
        "configuration",
        [spiral(7), ring(1), random_connected(8, seed=3), random_connected(9, seed=5)],
        ids=["spiral7", "ring6", "random8", "random9"],
    )
    def test_witness_transforms_configuration_into_line(self, configuration):
        """A machine-checked instance of Lemma 3.7 (and 3.8 when holes are present)."""
        result = moves_to_line(configuration)
        assert result.configurations[0] == configuration
        final = result.configurations[-1]
        assert final.perimeter == 2 * final.n - 2
        assert final.triangle_count == 0
        # Every intermediate move is a valid chain move applied to the
        # preceding configuration.
        for index, move in enumerate(result.moves):
            before = result.configurations[index]
            after = result.configurations[index + 1]
            assert is_valid_move(before.nodes, move)
            assert before.move(move.source, move.target) == after
            assert after.is_connected

    def test_line_input_needs_no_moves(self):
        result = moves_to_line(line(6))
        assert result.length == 0

    def test_disconnected_input_rejected(self):
        with pytest.raises(AlgorithmError):
            moves_to_line(ParticleConfiguration([(0, 0), (5, 5)]))

    def test_budget_exhaustion_raises(self):
        with pytest.raises(AlgorithmError):
            moves_to_line(spiral(12), max_states=5)


class TestHexagonFormationBaseline:
    def test_target_is_minimum_perimeter(self):
        for n in [10, 20, 35]:
            result = hexagon_formation(line(n))
            assert result.target.n == n
            assert result.target.perimeter == min_perimeter(n)
            assert result.target.is_connected

    def test_already_compressed_configuration_needs_fewer_moves_than_a_line(self):
        compressed = hexagon_formation(spiral(19))
        stretched = hexagon_formation(line(19))
        assert compressed.total_moves < stretched.total_moves

    def test_leader_is_preserved_in_target(self):
        result = hexagon_formation(line(12))
        assert result.leader in result.target.nodes

    def test_moves_scale_roughly_linearly(self):
        small = hexagon_formation(line(10)).total_moves
        large = hexagon_formation(line(40)).total_moves
        assert large < 30 * small

    def test_disconnected_input_rejected(self):
        with pytest.raises(AlgorithmError):
            hexagon_formation(ParticleConfiguration([(0, 0), (9, 9)]))


class TestSeparation:
    def test_colored_configuration_counts(self):
        colored = ColoredConfiguration.halves(line(10))
        assert colored.color_counts() == {0: 5, 1: 5}
        assert colored.homogeneous_edges() + colored.heterogeneous_edges() == 9

    def test_random_coloring_reproducible(self):
        a = ColoredConfiguration.random_colors(spiral(20), seed=1)
        b = ColoredConfiguration.random_colors(spiral(20), seed=1)
        assert a.colors == b.colors

    def test_segregation_bias_increases_homogeneous_edges(self):
        colored = ColoredConfiguration.random_colors(spiral(36), seed=2)
        chain = SeparationMarkovChain(colored, lam=4.0, gamma=4.0, seed=3)
        start = chain.state.homogeneous_edges()
        chain.run(25_000)
        assert chain.state.homogeneous_edges() > start
        assert chain.state.configuration.is_connected

    def test_color_counts_are_conserved(self):
        colored = ColoredConfiguration.halves(spiral(20))
        chain = SeparationMarkovChain(colored, lam=4.0, gamma=2.0, seed=4)
        chain.run(10_000)
        assert chain.state.color_counts() == colored.color_counts()

    def test_parameter_validation(self):
        colored = ColoredConfiguration.halves(line(6))
        with pytest.raises(AlgorithmError):
            SeparationMarkovChain(colored, lam=-1, gamma=2)
        with pytest.raises(AlgorithmError):
            SeparationMarkovChain(colored, lam=2, gamma=2, swap_probability=1.5)


class TestShortcutBridging:
    def test_terrain_construction(self):
        terrain = v_shaped_terrain(6)
        assert terrain.anchors[0] in terrain.land
        assert terrain.anchors[1] in terrain.land
        assert terrain.is_gap((1000, 1000))

    def test_initial_configuration_is_on_land(self):
        terrain = v_shaped_terrain(6)
        initial = initial_bridge_configuration(terrain, 30)
        assert initial.n == 30
        assert initial.is_connected
        assert terrain.gap_occupancy(initial) == 0

    def test_gap_aversion_limits_bridge_size(self):
        terrain = v_shaped_terrain(5)
        initial = initial_bridge_configuration(terrain, 25)
        tolerant = BridgingMarkovChain(initial, terrain, lam=4.0, gamma=1.0, seed=5)
        averse = BridgingMarkovChain(initial, terrain, lam=4.0, gamma=6.0, seed=5)
        tolerant.run(20_000)
        averse.run(20_000)
        assert averse.gap_occupancy() <= tolerant.gap_occupancy()
        assert averse.configuration.is_connected
        assert tolerant.configuration.is_connected

    def test_terrain_validation(self):
        with pytest.raises(AlgorithmError):
            v_shaped_terrain(1)
        terrain = v_shaped_terrain(4)
        with pytest.raises(AlgorithmError):
            initial_bridge_configuration(terrain, 10_000)


class TestPhototaxing:
    def test_control_run_without_light_response(self):
        system = PhototaxingSystem(spiral(25), lam=4.0, dazzle_factor=1.0, seed=6)
        system.run(5000)
        assert system.configuration.is_connected

    def test_light_response_produces_samples_and_keeps_invariants(self):
        system = PhototaxingSystem(spiral(25), lam=4.0, dazzle_factor=0.2, seed=7)
        system.run(10_000, refresh_every=1000)
        assert len(system.samples) >= 10
        assert system.configuration.is_connected
        assert system.configuration.n == 25
        assert isinstance(system.drift(), float)

    def test_parameter_validation(self):
        with pytest.raises(AlgorithmError):
            PhototaxingSystem(spiral(10), dazzle_factor=0.0)
        with pytest.raises(AlgorithmError):
            PhototaxingSystem(spiral(10), light_direction=(0.0, 0.0))
