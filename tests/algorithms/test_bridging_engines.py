"""Differential harness + invariants + golden trace for the bridging chain.

The shortcut-bridging chain of [2] runs on the shared engine stack via
:class:`repro.core.kernels.BridgingKernel`; this file holds it to the
same contract as the compression engines: lockstep
reference/fast/vector/sharded bit-identity (the vector engine resolves proposals in numpy block passes
against the terrain byte plane), block-run and mixed ``step()``/``run()``
agreement at every chunk boundary, randomized invariants (connectivity;
the incrementally maintained gap occupancy ``g(sigma)`` against the
from-scratch terrain recomputation), and a committed golden trace pinned
on all four engines.
"""

import json
from pathlib import Path

import pytest

from repro.algorithms.shortcut_bridging import (
    BridgingMarkovChain,
    Terrain,
    initial_bridge_configuration,
    v_shaped_terrain,
)
from repro.errors import ConfigurationError
from repro.lattice.shapes import line, random_connected

FIXTURE_PATH = Path(__file__).parent / "golden" / "bridging_arm5_n25_lam4_gam2_seed0.json"


def _v_case(arm_length, n, lam, gamma, iterations):
    terrain = v_shaped_terrain(arm_length)
    return terrain, initial_bridge_configuration(terrain, n), lam, gamma, iterations


def _case(name):
    if name == "v5_compressing":
        return _v_case(5, 25, 4.0, 2.0, 4000)
    if name == "v6_gap_tolerant":
        return _v_case(6, 40, 4.0, 1.0, 4000)
    if name == "v5_strongly_averse":
        return _v_case(5, 30, 4.0, 6.0, 4000)
    if name == "v4_rewarding_gap":
        # gamma < 1 rewards hanging over the gap: exercises site_delta = +1
        # acceptances as the common case.
        return _v_case(4, 20, 2.0, 0.5, 4000)
    if name == "line_on_gap_drift":
        # A start mostly *over* the gap, unbiased lambda: heavy drift forces
        # grid re-centers, which rebuild the fast engine's terrain plane.
        terrain = v_shaped_terrain(4)
        return terrain, line(18), 1.0, 1.2, 4000
    raise KeyError(name)


LOCKSTEP_CASES = (
    "v5_compressing",
    "v6_gap_tolerant",
    "v5_strongly_averse",
    "v4_rewarding_gap",
    "line_on_gap_drift",
)


def engine_quartet(terrain, initial, lam, gamma, seed):
    kwargs = dict(lam=lam, gamma=gamma, seed=seed)
    return tuple(
        BridgingMarkovChain(initial, terrain, engine=engine, **kwargs)
        for engine in ("reference", "fast", "vector", "sharded")
    )


def assert_same_final_state(fast, reference, context=""):
    assert fast.chain.occupied == reference.chain.occupied, context
    assert fast.chain.edge_count == reference.chain.edge_count, context
    assert fast.accepted_moves == reference.accepted_moves, context
    assert fast.chain.rejection_counts == reference.chain.rejection_counts, context
    assert fast.chain.perimeter() == reference.chain.perimeter(), context
    assert fast.gap_occupancy() == reference.gap_occupancy(), context


@pytest.mark.slow
@pytest.mark.parametrize("name", LOCKSTEP_CASES)
def test_lockstep_trajectories_are_identical(name):
    terrain, initial, lam, gamma, iterations = _case(name)
    reference, fast, vector, sharded = engine_quartet(terrain, initial, lam, gamma, seed=7)
    for iteration in range(iterations):
        expected = reference.chain.step()
        for label, chain in (("fast", fast), ("vector", vector), ("sharded", sharded)):
            actual = chain.chain.step()
            assert actual == expected, (
                f"{name}: trajectories diverged at iteration {iteration}: "
                f"reference={expected}, {label}={actual}"
            )
    assert_same_final_state(fast, reference, name)
    assert_same_final_state(vector, reference, name)
    assert_same_final_state(sharded, reference, name)


@pytest.mark.slow
@pytest.mark.parametrize("name", LOCKSTEP_CASES)
def test_block_runs_match_lockstep_runs(name):
    """run(k) must consume the tape exactly like k step() calls — on the
    vector engine that is the numpy pass with the terrain-plane conflict
    cut, checked against the fast engine's gap occupancy at every chunk
    boundary."""
    terrain, initial, lam, gamma, iterations = _case(name)
    reference, fast, vector, sharded = engine_quartet(terrain, initial, lam, gamma, seed=19)
    for chunk in (1, 37, 700, 1024, iterations):
        reference.run(chunk)
        fast.run(chunk)
        vector.run(chunk)
        sharded.run(chunk)
        assert fast.chain.edge_count == reference.chain.edge_count, f"{name}@{chunk}"
        assert vector.chain.edge_count == reference.chain.edge_count, f"{name}@{chunk}"
        assert vector.gap_occupancy() == fast.gap_occupancy(), f"{name}@{chunk}"
        assert sharded.gap_occupancy() == fast.gap_occupancy(), f"{name}@{chunk}"
    assert_same_final_state(fast, reference, name)
    assert_same_final_state(vector, reference, name)
    assert_same_final_state(sharded, reference, name)


@pytest.mark.slow
def test_vector_mixed_step_and_run_interleavings_match_fast():
    """step() (scalar path) and run() (numpy pass) share one tape; any
    interleaving must stay bit-identical to the fast engine."""
    terrain = v_shaped_terrain(5)
    initial = initial_bridge_configuration(terrain, 30)
    kwargs = dict(lam=4.0, gamma=2.0, seed=21)
    fast = BridgingMarkovChain(initial, terrain, engine="fast", **kwargs)
    vector = BridgingMarkovChain(initial, terrain, engine="vector", **kwargs)
    schedule = [
        ("run", 700), ("step", 5), ("run", 1), ("step", 1),
        ("run", 2048), ("step", 3), ("run", 333),
    ]
    for action, amount in schedule:
        if action == "run":
            fast.run(amount)
            vector.run(amount)
        else:
            for _ in range(amount):
                assert vector.chain.step() == fast.chain.step()
        assert vector.gap_occupancy() == fast.gap_occupancy(), (action, amount)
    assert_same_final_state(vector, fast)


@pytest.mark.slow
def test_long_run_with_grid_reallocation_matches_reference():
    """Unbiased drift forces several re-centers (terrain plane rebuilds —
    on the vector engine the guard-band re-center also rebuilds the aux
    plane the block pass reads)."""
    terrain = v_shaped_terrain(4)
    reference, fast, vector, sharded = engine_quartet(terrain, line(22), 1.0, 1.1, seed=13)
    reference.run(150_000)
    fast.run(150_000)
    vector.run(150_000)
    sharded.run(150_000)
    assert_same_final_state(fast, reference)
    assert_same_final_state(vector, reference)
    assert_same_final_state(sharded, reference)


@pytest.mark.parametrize("engine", ["reference", "fast", "vector", "sharded"])
class TestInvariants:
    def test_gap_occupancy_matches_terrain_recomputation(self, engine):
        """The engines' incremental g(sigma) against the from-scratch count,
        on random configurations over random terrains."""
        for seed in range(4):
            configuration = random_connected(20, seed=seed + 40)
            # A random half of the occupied region (plus its surroundings)
            # is land; everything else is gap.
            land = frozenset(
                node for i, node in enumerate(sorted(configuration.nodes)) if i % 2
            )
            terrain = Terrain(land=land, anchors=(min(land), max(land)))
            chain = BridgingMarkovChain(
                configuration, terrain, lam=2.0, gamma=1.5, seed=seed, engine=engine
            )
            assert chain.gap_occupancy() == terrain.gap_occupancy(configuration)
            for _ in range(4):
                chain.run(1500)
                assert chain.gap_occupancy() == terrain.gap_occupancy(
                    chain.configuration
                ), f"seed {seed}"
                assert chain.g_sigma() == chain.gap_occupancy()

    def test_connectivity_and_metrics_preserved(self, engine):
        terrain = v_shaped_terrain(5)
        initial = initial_bridge_configuration(terrain, 25)
        chain = BridgingMarkovChain(
            initial, terrain, lam=4.0, gamma=3.0, seed=9, engine=engine
        )
        for _ in range(5):
            chain.run(2000)
            configuration = chain.configuration
            assert configuration.is_connected
            assert configuration.n == 25
            assert chain.chain.edge_count == configuration.edge_count
            assert chain.chain.perimeter() == configuration.perimeter


class TestWrapper:
    def test_engine_selection_and_unknown_engine(self):
        terrain = v_shaped_terrain(4)
        initial = initial_bridge_configuration(terrain, 15)
        chain = BridgingMarkovChain(initial, terrain, 4.0, 2.0, engine="fast")
        assert chain.engine == "fast"
        assert chain.step() in (True, False)
        vectorized = BridgingMarkovChain(initial, terrain, 4.0, 2.0, engine="vector")
        assert vectorized.engine == "vector"
        with pytest.raises(ConfigurationError):
            BridgingMarkovChain(initial, terrain, 4.0, 2.0, engine="warp")

    def test_fast_engine_reproduces_gap_aversion_tradeoff(self):
        """The headline behaviour of [2] on the production engine."""
        terrain = v_shaped_terrain(5)
        initial = initial_bridge_configuration(terrain, 25)
        tolerant = BridgingMarkovChain(
            initial, terrain, lam=4.0, gamma=1.0, seed=5, engine="fast"
        )
        averse = BridgingMarkovChain(
            initial, terrain, lam=4.0, gamma=6.0, seed=5, engine="fast"
        )
        tolerant.run(20_000)
        averse.run(20_000)
        assert averse.gap_occupancy() <= tolerant.gap_occupancy()
        assert averse.configuration.is_connected
        assert tolerant.configuration.is_connected


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def golden(self):
        with FIXTURE_PATH.open() as fh:
            return json.load(fh)

    @pytest.fixture(scope="class")
    def setup(self, golden):
        terrain = v_shaped_terrain(golden["arm_length"], opening=golden["opening"])
        return terrain, initial_bridge_configuration(terrain, golden["n"])

    @pytest.mark.parametrize("engine", ["reference", "fast", "vector", "sharded"])
    def test_engine_reproduces_golden_trace(self, golden, setup, engine):
        terrain, initial = setup
        chain = BridgingMarkovChain(
            initial,
            terrain,
            lam=golden["lam"],
            gamma=golden["gamma"],
            seed=golden["seed"],
            engine=engine,
            draw_block=golden["draw_block"],
        )
        for iteration, expected in enumerate(golden["trajectory"]):
            result = chain.chain.step()
            actual = [
                result.move.source[0],
                result.move.source[1],
                result.move.target[0],
                result.move.target[1],
                result.edge_delta,
                result.reason,
            ]
            assert actual == expected, (
                f"{engine} engine diverged from the golden trace at iteration "
                f"{iteration}: got {actual}, expected {expected}"
            )
        final = golden["final"]
        assert chain.chain.edge_count == final["edge_count"]
        assert chain.chain.perimeter() == final["perimeter"]
        assert chain.accepted_moves == final["accepted_moves"]
        assert chain.gap_occupancy() == final["gap_occupancy"]
        assert chain.chain.rejection_counts == final["rejection_counts"]
        assert sorted(list(node) for node in chain.chain.occupied) == final["occupied"]

    @pytest.mark.parametrize("engine", ["reference", "fast", "vector", "sharded"])
    def test_engine_run_reproduces_golden_final_state(self, golden, setup, engine):
        terrain, initial = setup
        chain = BridgingMarkovChain(
            initial,
            terrain,
            lam=golden["lam"],
            gamma=golden["gamma"],
            seed=golden["seed"],
            engine=engine,
            draw_block=golden["draw_block"],
        )
        chain.run(golden["steps"])
        final = golden["final"]
        assert chain.chain.edge_count == final["edge_count"]
        assert chain.accepted_moves == final["accepted_moves"]
        assert chain.gap_occupancy() == final["gap_occupancy"]
        assert chain.chain.rejection_counts == final["rejection_counts"]
        assert sorted(list(node) for node in chain.chain.occupied) == final["occupied"]

    def test_golden_fixture_is_self_consistent(self, golden):
        assert golden["steps"] == len(golden["trajectory"]) == 200
        moved = sum(1 for entry in golden["trajectory"] if entry[5] == "moved")
        assert moved == golden["final"]["accepted_moves"]
        reasons = {entry[5] for entry in golden["trajectory"]}
        assert reasons <= {
            "moved",
            "target_occupied",
            "five_neighbors",
            "property_failed",
            "metropolis_rejected",
        }
