"""End-to-end integration tests spanning the whole library.

These are the "does the reproduction actually reproduce the paper's
headline behaviour" checks: compression above the threshold, expansion
below it, equivalence of the centralized and distributed engines on the
same workload, and the public API advertised in the README quickstart.
"""

import pytest

import repro
from repro import (
    AmoebotSystem,
    CompressionMarkovChain,
    CompressionSimulation,
    ExpansionSimulation,
    ParticleConfiguration,
    line,
)
from repro.analysis.metrics import achieved_alpha, achieved_beta
from repro.constants import COMPRESSION_THRESHOLD, EXPANSION_THRESHOLD


class TestHeadlineBehaviour:
    """Experiment E1/E2 in miniature: the lambda = 4 system compresses markedly
    while the lambda = 2 system stays expanded, from the same line start."""

    N = 40
    ITERATIONS = 120_000

    @pytest.fixture(scope="class")
    def compressed_run(self):
        simulation = CompressionSimulation.from_line(self.N, lam=4.0, seed=2024)
        simulation.run(self.ITERATIONS, record_every=self.ITERATIONS // 10)
        return simulation

    @pytest.fixture(scope="class")
    def expanded_run(self):
        simulation = ExpansionSimulation.from_line(self.N, lam=2.0, seed=2024)
        simulation.run(self.ITERATIONS, record_every=self.ITERATIONS // 10)
        return simulation

    def test_lambda_4_compresses(self, compressed_run):
        final = compressed_run.trace.final()
        assert final.perimeter < 0.55 * (2 * self.N - 2)
        assert compressed_run.compression_ratio() < 3.5

    def test_lambda_2_does_not_compress(self, expanded_run):
        final = expanded_run.trace.final()
        assert final.beta > 0.45
        assert expanded_run.compression_ratio() > compressed_run_alpha_threshold()

    def test_gap_between_the_two_regimes(self, compressed_run, expanded_run):
        assert compressed_run.chain.perimeter() < expanded_run.chain.perimeter()
        assert compressed_run.chain.edge_count > expanded_run.chain.edge_count

    def test_invariants_hold_at_the_end_of_both_runs(self, compressed_run, expanded_run):
        for simulation in (compressed_run, expanded_run):
            configuration = simulation.configuration
            assert configuration.n == self.N
            assert configuration.is_connected
            assert configuration.is_hole_free


def compressed_run_alpha_threshold() -> float:
    """The lambda=2 run should stay clearly less compressed than this ratio."""
    return 2.2


class TestEnginesAgree:
    def test_markov_chain_and_amoebot_system_follow_the_same_rule(self):
        """Both engines, run on the same workload, end in comparably compressed states."""
        n, lam = 30, 5.0
        chain = CompressionMarkovChain(line(n), lam=lam, seed=7)
        chain.run(80_000)
        system = AmoebotSystem(line(n), lam=lam, seed=7)
        system.run(240_000)
        chain_alpha = achieved_alpha(chain.configuration)
        system_alpha = achieved_alpha(system.configuration)
        assert chain_alpha < 3.0
        assert system_alpha < 3.0

    def test_package_level_exports(self):
        assert repro.__version__ == "1.9.0"
        assert repro.VectorCompressionChain is not None
        assert repro.ShardedCompressionChain is not None
        assert EXPANSION_THRESHOLD < COMPRESSION_THRESHOLD
        configuration = ParticleConfiguration([(0, 0), (1, 0)])
        assert configuration.perimeter == 2


class TestQuickstartContract:
    def test_readme_quickstart_sequence(self):
        simulation = CompressionSimulation.from_line(50, lam=4.0, seed=0)
        simulation.run(100_000)
        assert simulation.compression_ratio() < 4.0
        assert achieved_beta(simulation.configuration) < 0.8
