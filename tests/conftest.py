"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.shapes import hexagon, line, random_connected, ring, spiral, staircase


@pytest.fixture
def single_particle() -> ParticleConfiguration:
    return ParticleConfiguration([(0, 0)])


@pytest.fixture
def triangle() -> ParticleConfiguration:
    return ParticleConfiguration([(0, 0), (1, 0), (0, 1)])


@pytest.fixture
def line10() -> ParticleConfiguration:
    return line(10)


@pytest.fixture
def flower() -> ParticleConfiguration:
    """The seven-particle filled hexagon."""
    return hexagon(1)


@pytest.fixture
def hex_ring() -> ParticleConfiguration:
    """A six-particle ring enclosing one hole."""
    return ring(1)


@pytest.fixture
def spiral30() -> ParticleConfiguration:
    return spiral(30)


@pytest.fixture
def random_configs() -> list[ParticleConfiguration]:
    """A deterministic batch of random connected configurations of varied shapes."""
    return [
        random_connected(12, seed=1),
        random_connected(20, seed=2),
        random_connected(30, seed=3, compactness=0.7),
        random_connected(25, seed=4),
    ]
