"""Unit tests for ParticleConfiguration."""

import pytest

from repro.errors import ConfigurationError, DisconnectedConfigurationError, InvalidMoveError
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.shapes import hexagon, line, ring, spiral


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ParticleConfiguration([])

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            ParticleConfiguration([(0, 0), (0, 0)])

    def test_container_protocol(self, triangle):
        assert len(triangle) == 3
        assert (0, 0) in triangle
        assert (5, 5) not in triangle
        assert set(iter(triangle)) == triangle.nodes

    def test_equality_and_hash(self, triangle):
        same = ParticleConfiguration([(0, 1), (1, 0), (0, 0)])
        assert triangle == same
        assert hash(triangle) == hash(same)
        assert triangle != ParticleConfiguration([(0, 0), (1, 0), (1, 1)])

    def test_from_sorted_roundtrip(self, flower):
        rebuilt = ParticleConfiguration.from_sorted(flower.sorted_nodes())
        assert rebuilt == flower


class TestDerivedQuantities:
    def test_single_particle(self, single_particle):
        assert single_particle.edge_count == 0
        assert single_particle.triangle_count == 0
        assert single_particle.perimeter == 0
        assert single_particle.is_connected
        assert single_particle.is_hole_free

    def test_line_quantities(self):
        configuration = line(6)
        assert configuration.edge_count == 5
        assert configuration.triangle_count == 0
        assert configuration.perimeter == 10
        assert configuration.diameter == 5

    def test_flower_quantities(self, flower):
        assert flower.n == 7
        assert flower.edge_count == 12
        assert flower.triangle_count == 6
        assert flower.perimeter == 6

    def test_ring_has_one_hole(self, hex_ring):
        assert hex_ring.has_holes
        assert len(hex_ring.holes) == 1
        assert hex_ring.holes[0] == frozenset({(0, 0)})
        assert hex_ring.perimeter == 12  # 6 outside + 6 inside

    def test_degree_and_neighbor_queries(self, flower):
        assert flower.degree((0, 0)) == 6
        assert len(flower.occupied_neighbors((0, 0))) == 6
        assert flower.empty_neighbors((0, 0)) == ()
        assert flower.degree((1, 0)) == 3

    def test_perimeter_requires_connectivity(self):
        disconnected = ParticleConfiguration([(0, 0), (5, 5)])
        assert not disconnected.is_connected
        with pytest.raises(DisconnectedConfigurationError):
            _ = disconnected.perimeter

    def test_diameter_of_compressed_configuration_is_small(self):
        configuration = spiral(37)
        assert configuration.diameter <= 8


class TestTransformations:
    def test_move(self, triangle):
        moved = triangle.move((0, 1), (1, 1))
        assert (1, 1) in moved and (0, 1) not in moved
        assert triangle.nodes != moved.nodes  # original untouched

    def test_move_validation(self, triangle):
        with pytest.raises(InvalidMoveError):
            triangle.move((5, 5), (5, 6))
        with pytest.raises(InvalidMoveError):
            triangle.move((0, 0), (1, 0))
        with pytest.raises(InvalidMoveError):
            triangle.move((0, 0), (3, 3))

    def test_add_remove(self, triangle):
        grown = triangle.add((1, 1))
        assert grown.n == 4
        shrunk = grown.remove((1, 1))
        assert shrunk == triangle
        with pytest.raises(ConfigurationError):
            triangle.add((0, 0))
        with pytest.raises(ConfigurationError):
            triangle.remove((9, 9))

    def test_remove_last_particle_rejected(self, single_particle):
        with pytest.raises(ConfigurationError):
            single_particle.remove((0, 0))

    def test_translate_and_canonical(self, flower):
        shifted = flower.translate((10, -4))
        assert shifted != flower
        assert shifted.canonical() == flower.canonical()
        assert shifted.perimeter == flower.perimeter
        assert shifted.edge_count == flower.edge_count

    def test_require_helpers(self, flower, hex_ring):
        assert flower.require_connected() is flower
        assert flower.require_hole_free() is flower
        with pytest.raises(ConfigurationError):
            hex_ring.require_hole_free()
        with pytest.raises(DisconnectedConfigurationError):
            ParticleConfiguration([(0, 0), (9, 9)]).require_connected()

    def test_to_cartesian_count(self, flower):
        assert len(flower.to_cartesian()) == flower.n
