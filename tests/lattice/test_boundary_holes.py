"""Tests for boundary walks, perimeter computation and hole detection."""

import pytest

from repro.errors import ConfigurationError
from repro.lattice.boundary import (
    boundary_adjacency_counts,
    external_boundary_walk,
    hole_boundary_walks,
    total_perimeter,
)
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.holes import exterior_cells, find_holes, has_holes, hole_cells
from repro.lattice.shapes import hexagon, line, random_connected, ring, spiral, staircase


class TestHoleDetection:
    def test_solid_shapes_have_no_holes(self):
        for configuration in [line(8), hexagon(2), spiral(20), staircase(9)]:
            assert not has_holes(configuration.nodes)
            assert find_holes(configuration.nodes) == []

    def test_ring_has_single_one_cell_hole(self):
        holes = find_holes(ring(1).nodes)
        assert holes == [frozenset({(0, 0)})]

    def test_larger_ring_hole(self):
        holes = find_holes(ring(2).nodes)
        assert len(holes) == 1
        assert len(holes[0]) == 7  # hexagon(1) worth of empty cells

    def test_two_separate_holes(self):
        # Two rings sharing one particle column, far enough apart to keep
        # their holes distinct.
        left = ring(1)
        right = ring(1).translate((3, 0))
        bridge = {(1, 0), (2, 0)}
        nodes = left.nodes | right.nodes | bridge
        configuration = ParticleConfiguration(nodes)
        assert configuration.is_connected
        holes = find_holes(configuration.nodes)
        assert len(holes) == 2
        assert {frozenset({(0, 0)}), frozenset({(3, 0)})} == set(holes)

    def test_exterior_and_hole_cells_are_disjoint(self, hex_ring):
        outside = exterior_cells(hex_ring.nodes)
        enclosed = hole_cells(hex_ring.nodes)
        assert outside.isdisjoint(enclosed)
        assert enclosed == {(0, 0)}

    def test_empty_input(self):
        assert exterior_cells(set()) == set()
        assert hole_cells(set()) == set()
        assert find_holes(set()) == []


class TestPerimeter:
    def test_known_perimeters(self):
        assert total_perimeter({(0, 0)}) == 0
        assert total_perimeter({(0, 0), (1, 0)}) == 2
        assert total_perimeter(line(5).nodes) == 8
        assert total_perimeter(hexagon(1).nodes) == 6
        assert total_perimeter(hexagon(2).nodes) == 12
        assert total_perimeter(ring(1).nodes) == 12

    def test_empty_and_disconnected_rejected(self):
        with pytest.raises(ConfigurationError):
            total_perimeter(set())
        with pytest.raises(ConfigurationError):
            total_perimeter({(0, 0), (5, 5)})

    def test_lemma_2_3_on_random_hole_free_configurations(self):
        """e = 3n - p - 3 for connected hole-free configurations (Lemma 2.3)."""
        from repro.lattice.shapes import random_hole_free

        for seed in range(8):
            configuration = random_hole_free(18, seed=seed)
            assert configuration.is_hole_free
            assert configuration.edge_count == 3 * configuration.n - configuration.perimeter - 3

    def test_lemma_2_4_on_random_hole_free_configurations(self):
        """t = 2n - p - 2 for connected hole-free configurations (Lemma 2.4)."""
        from repro.lattice.shapes import random_hole_free

        for seed in range(8):
            configuration = random_hole_free(15, seed=100 + seed)
            assert configuration.triangle_count == 2 * configuration.n - configuration.perimeter - 2

    def test_lemma_2_1_lower_bound(self, random_configs):
        """Every connected configuration of n >= 2 particles has perimeter >= sqrt(n)."""
        import math

        for configuration in random_configs:
            assert configuration.perimeter >= math.sqrt(configuration.n)


class TestBoundaryWalks:
    def test_external_walk_of_two_particles(self):
        walk = external_boundary_walk({(0, 0), (1, 0)})
        assert walk.length == 2
        assert set(walk.nodes) == {(0, 0), (1, 0)}
        assert walk.is_external

    def test_single_particle_walk_has_zero_length(self):
        walk = external_boundary_walk({(0, 0)})
        assert walk.length == 0

    def test_hole_walk_of_ring(self, hex_ring):
        walks = hole_boundary_walks(hex_ring.nodes)
        assert len(walks) == 1
        assert walks[0].length == 6
        assert not walks[0].is_external
        assert set(walks[0].nodes) <= hex_ring.nodes

    def test_walk_lengths_sum_to_perimeter(self, random_configs, hex_ring, flower):
        configurations = list(random_configs) + [hex_ring, flower, line(7), staircase(8)]
        for configuration in configurations:
            walks = [external_boundary_walk(configuration.nodes)]
            walks += hole_boundary_walks(configuration.nodes)
            assert sum(w.length for w in walks) == configuration.perimeter

    def test_adjacency_count_identities(self, flower, hex_ring):
        exterior, holes = boundary_adjacency_counts(flower.nodes)
        assert exterior == 2 * flower.perimeter + 6
        assert holes == []
        exterior, holes = boundary_adjacency_counts(hex_ring.nodes)
        assert exterior == 2 * 6 + 6
        assert holes == [2 * 6 - 6]

    def test_cut_edge_counted_twice(self):
        """Two triangles joined by a single path edge: the bridge edge lies on the
        boundary twice, so the perimeter exceeds the simple outline length."""
        nodes = {(0, 0), (1, 0), (0, 1), (3, 0), (4, 0), (3, 1), (2, 0)}
        configuration = ParticleConfiguration(nodes)
        # n=7, e=8 -> p = 3*7 - 8 - 3 = 10 by Lemma 2.3.
        assert configuration.edge_count == 8
        assert configuration.perimeter == 10
        walk = external_boundary_walk(nodes)
        assert walk.length == 10
        # The cut vertex (2, 0) is visited twice by the walk.
        assert sum(1 for node in walk.nodes if node == (2, 0)) == 2
