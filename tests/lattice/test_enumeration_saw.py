"""Tests for exhaustive enumeration, the hexagonal dual and self-avoiding walks.

These cover the combinatorial facts the paper's bounds rest on:
Figure 11 (the 11 three-particle configurations), the benzenoid counting
series behind Lemma 5.5, the duality of Lemma 4.3, and the connective
constant of Theorem 4.2.
"""

import math

import pytest

from repro.constants import (
    FIXED_POLYHEX_COUNTS,
    HEXAGONAL_CONNECTIVE_CONSTANT,
    HOLE_FREE_SIX_PARTICLE_CONFIGURATIONS,
    THREE_PARTICLE_CONFIGURATIONS,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.lattice.enumeration import (
    count_configurations,
    count_configurations_by_perimeter,
    enumerate_configurations,
    max_perimeter_configuration_count,
)
from repro.lattice.geometry import max_perimeter, min_perimeter
from repro.lattice.hex_dual import (
    dual_boundary_length,
    dual_boundary_polygon_length,
    dual_face_edges,
    hex_face_vertices,
    hex_vertex_neighbors,
)
from repro.lattice.saw import (
    connective_constant_upper_bounds,
    count_self_avoiding_polygons,
    count_self_avoiding_walks,
    estimate_connective_constant,
)
from repro.lattice.shapes import hexagon, line, random_hole_free, ring


class TestEnumeration:
    def test_figure_11_eleven_three_particle_configurations(self):
        assert count_configurations(3, hole_free_only=True) == THREE_PARTICLE_CONFIGURATIONS

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_polyhex_series(self, n):
        assert count_configurations(n) == FIXED_POLYHEX_COUNTS[n - 1]

    def test_holes_only_appear_at_six_particles(self):
        for n in range(1, 6):
            assert count_configurations(n) == count_configurations(n, hole_free_only=True)
        assert (
            count_configurations(6, hole_free_only=True)
            == HOLE_FREE_SIX_PARTICLE_CONFIGURATIONS
        )
        assert count_configurations(6) == HOLE_FREE_SIX_PARTICLE_CONFIGURATIONS + 1

    def test_enumerated_configurations_are_canonical_connected(self):
        seen = set()
        for configuration in enumerate_configurations(4):
            assert configuration.is_connected
            assert configuration.n == 4
            assert configuration.canonical() == configuration
            seen.add(configuration)
        assert len(seen) == FIXED_POLYHEX_COUNTS[3]

    def test_perimeter_counts_sum_to_total(self):
        for n in [3, 4, 5]:
            counts = count_configurations_by_perimeter(n)
            assert sum(counts.values()) == FIXED_POLYHEX_COUNTS[n - 1]
            assert min(counts) == min_perimeter(n)
            assert max(counts) == max_perimeter(n)

    def test_staircase_paths_lower_bound_on_tree_count(self):
        """Lemma 5.1: the number of maximum-perimeter configurations is at least 2^(n-1)."""
        for n in [3, 4, 5, 6]:
            assert max_perimeter_configuration_count(n) >= 2 ** (n - 1)

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            list(enumerate_configurations(0))


class TestHexDual:
    def test_hex_lattice_is_three_regular_and_symmetric(self):
        for vertex in [(0, 0, "U"), (2, -1, "D"), (-3, 4, "U")]:
            nbs = hex_vertex_neighbors(vertex)
            assert len(set(nbs)) == 3
            for nb in nbs:
                assert vertex in hex_vertex_neighbors(nb)

    def test_hex_face_is_a_six_cycle(self):
        face = hex_face_vertices((2, 3))
        assert len(set(face)) == 6
        for i, vertex in enumerate(face):
            assert face[(i + 1) % 6] in hex_vertex_neighbors(vertex)
        assert len(dual_face_edges((2, 3))) == 6

    def test_lemma_4_3_boundary_relation_hole_free(self):
        """For connected hole-free configurations the dual boundary has length 2p + 6."""
        for configuration in [line(5), hexagon(2), random_hole_free(16, seed=3)]:
            assert dual_boundary_length(configuration.nodes) == 2 * configuration.perimeter + 6

    def test_dual_boundary_with_holes(self, hex_ring):
        # External 6-perimeter part contributes 2*6+6, the hole contributes 2*6-6.
        assert dual_boundary_length(hex_ring.nodes) == (2 * 6 + 6) + (2 * 6 - 6)
        assert dual_boundary_polygon_length(hex_ring.nodes) == 2 * 6 + 6

    def test_empty_configuration(self):
        assert dual_boundary_length(set()) == 0


class TestSelfAvoidingWalks:
    def test_known_honeycomb_walk_counts(self):
        # OEIS A001668: 1, 3, 6, 12, 24, 48, 90, 174, 336, 648, 1218, 2328, 4416
        counts = count_self_avoiding_walks(10)
        assert counts[:8] == [1, 3, 6, 12, 24, 48, 90, 174]
        assert counts[9] == 648
        assert counts[10] == 1218

    def test_polygon_counts_and_parity(self):
        polygons = count_self_avoiding_polygons(12)
        # The shortest polygon on the honeycomb is a single hexagonal face;
        # the root vertex lies on three faces, each traversable in two
        # directions, giving six rooted directed hexagons.
        assert polygons[6] == 6
        assert all(length % 2 == 0 for length in polygons)
        # Polygons are never more numerous than walks of the same length.
        walks = count_self_avoiding_walks(12)
        for length, count in polygons.items():
            assert count <= walks[length]

    def test_connective_constant_estimate_upper_bounds_exact_value(self):
        estimate = estimate_connective_constant(13)
        assert estimate > HEXAGONAL_CONNECTIVE_CONSTANT
        assert estimate < HEXAGONAL_CONNECTIVE_CONSTANT * 1.05

    def test_root_estimates_decrease_toward_connective_constant(self):
        estimates = connective_constant_upper_bounds(12)
        assert estimates[-1] < estimates[1]
        assert estimates[-1] > HEXAGONAL_CONNECTIVE_CONSTANT

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            count_self_avoiding_walks(-1)
        with pytest.raises(AnalysisError):
            estimate_connective_constant(2)
