"""Property-based tests (hypothesis) for the lattice substrate.

These exercise the core geometric invariants on randomly generated
configurations: the Lemma 2.3/2.4 identities, the agreement between the
two independent perimeter computations, canonicalization, and
serialization round-trips.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.io.serialization import configuration_from_json, configuration_to_json
from repro.lattice.boundary import external_boundary_walk, hole_boundary_walks
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.hex_dual import dual_boundary_length
from repro.lattice.shapes import random_connected, random_hole_free
from repro.lattice.triangular import neighbors


@st.composite
def connected_configurations(draw, min_n: int = 2, max_n: int = 24) -> ParticleConfiguration:
    """Random connected configurations (possibly with holes)."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    compactness = draw(st.sampled_from([0.0, 0.3, 0.7, 0.95]))
    return random_connected(n, seed=seed, compactness=compactness)


@st.composite
def hole_free_configurations(draw, min_n: int = 2, max_n: int = 20) -> ParticleConfiguration:
    """Random connected hole-free configurations."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_hole_free(n, seed=seed)


@settings(max_examples=40, deadline=None)
@given(configuration=hole_free_configurations())
def test_lemma_2_3_and_2_4_identities(configuration: ParticleConfiguration):
    n, p = configuration.n, configuration.perimeter
    assert configuration.edge_count == 3 * n - p - 3
    assert configuration.triangle_count == 2 * n - p - 2


@settings(max_examples=40, deadline=None)
@given(configuration=connected_configurations())
def test_boundary_walks_agree_with_adjacency_counting(configuration: ParticleConfiguration):
    walks = [external_boundary_walk(configuration.nodes)]
    walks += hole_boundary_walks(configuration.nodes)
    assert sum(w.length for w in walks) == configuration.perimeter


@settings(max_examples=40, deadline=None)
@given(configuration=connected_configurations())
def test_perimeter_within_paper_bounds(configuration: ParticleConfiguration):
    n = configuration.n
    assert configuration.perimeter >= math.sqrt(n)
    # With holes the perimeter can exceed 2n - 2 only through hole
    # boundaries, which are bounded by the number of interior edges; the
    # simple sanity bound below still holds comfortably.
    assert configuration.perimeter <= 3 * n


@settings(max_examples=40, deadline=None)
@given(configuration=hole_free_configurations())
def test_dual_boundary_relation(configuration: ParticleConfiguration):
    assert dual_boundary_length(configuration.nodes) == 2 * configuration.perimeter + 6


@settings(max_examples=40, deadline=None)
@given(configuration=connected_configurations(), dx=st.integers(-30, 30), dy=st.integers(-30, 30))
def test_translation_invariance_of_derived_quantities(configuration, dx, dy):
    shifted = configuration.translate((dx, dy))
    assert shifted.edge_count == configuration.edge_count
    assert shifted.triangle_count == configuration.triangle_count
    assert shifted.perimeter == configuration.perimeter
    assert len(shifted.holes) == len(configuration.holes)
    assert shifted.canonical() == configuration.canonical()


@settings(max_examples=40, deadline=None)
@given(configuration=connected_configurations())
def test_canonicalization_idempotent(configuration: ParticleConfiguration):
    canonical = configuration.canonical()
    assert canonical.canonical() == canonical
    min_x = min(x for x, _ in canonical.nodes)
    min_y = min(y for _, y in canonical.nodes)
    assert (min_x, min_y) == (0, 0)


@settings(max_examples=40, deadline=None)
@given(configuration=connected_configurations())
def test_serialization_roundtrip(configuration: ParticleConfiguration):
    assert configuration_from_json(configuration_to_json(configuration)) == configuration


@settings(max_examples=40, deadline=None)
@given(configuration=connected_configurations())
def test_degree_consistency(configuration: ParticleConfiguration):
    """Summing per-node degrees double-counts the induced edges."""
    total_degree = sum(configuration.degree(node) for node in configuration.nodes)
    assert total_degree == 2 * configuration.edge_count
    for node in configuration.nodes:
        assert configuration.degree(node) == len(configuration.occupied_neighbors(node))
        assert configuration.degree(node) + len(configuration.empty_neighbors(node)) == 6
