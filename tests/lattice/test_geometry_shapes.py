"""Tests for geometric identities and configuration generators."""

import math

import pytest

from repro.constants import pmax
from repro.errors import ConfigurationError
from repro.lattice.geometry import (
    alpha_compression_threshold,
    beta_expansion_threshold,
    edges_from_perimeter,
    max_perimeter,
    min_perimeter,
    min_perimeter_bounds,
    min_perimeter_hexagon,
    perimeter_from_edges,
    perimeter_from_triangles,
    triangles_from_perimeter,
)
from repro.lattice.shapes import (
    hexagon,
    line,
    parallelogram,
    property2_witness,
    random_connected,
    random_hole_free,
    ring,
    spiral,
    staircase,
)


class TestGeometryIdentities:
    @pytest.mark.parametrize("n", [2, 3, 5, 10, 40, 100])
    def test_perimeter_edge_triangle_roundtrips(self, n):
        for perimeter in range(int(math.isqrt(n)), 2 * n - 1):
            assert perimeter_from_edges(n, edges_from_perimeter(n, perimeter)) == perimeter
            assert perimeter_from_triangles(n, triangles_from_perimeter(n, perimeter)) == perimeter

    def test_max_perimeter(self):
        assert max_perimeter(1) == 0
        assert max_perimeter(2) == 2
        assert max_perimeter(10) == 18
        assert max_perimeter(10) == pmax(10)

    def test_min_perimeter_small_values(self):
        assert min_perimeter(1) == 0
        assert min_perimeter(2) == 2
        assert min_perimeter(3) == 3
        assert min_perimeter(4) == 4
        assert min_perimeter(7) == 6
        assert min_perimeter(19) == 12  # hexagon(2)

    def test_min_perimeter_between_paper_bounds(self):
        for n in range(2, 300):
            lower, upper = min_perimeter_bounds(n)
            assert lower <= min_perimeter(n) <= upper

    def test_min_perimeter_matches_full_hexagons(self):
        for radius in range(0, 6):
            configuration = hexagon(radius)
            assert min_perimeter(configuration.n) == configuration.perimeter

    def test_min_perimeter_matches_exhaustive_enumeration(self):
        from repro.lattice.enumeration import enumerate_configurations

        for n in range(2, 8):
            best = min(
                configuration.perimeter
                for configuration in enumerate_configurations(n, hole_free_only=True)
            )
            assert best == min_perimeter(n)

    def test_spiral_attains_minimum_perimeter(self):
        for n in [1, 2, 5, 9, 13, 22, 30, 47, 61, 90]:
            assert spiral(n).perimeter == min_perimeter(n)
            assert min_perimeter_hexagon(n) == min_perimeter(n)

    def test_thresholds_validate_inputs(self):
        with pytest.raises(ConfigurationError):
            alpha_compression_threshold(10, alpha=1.0)
        with pytest.raises(ConfigurationError):
            beta_expansion_threshold(10, beta=1.5)
        assert alpha_compression_threshold(10, 2.0) == 2 * min_perimeter(10)
        assert beta_expansion_threshold(10, 0.5) == 0.5 * max_perimeter(10)

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            min_perimeter(0)
        with pytest.raises(ConfigurationError):
            perimeter_from_edges(0, 0)


class TestShapes:
    def test_line(self):
        configuration = line(12)
        assert configuration.n == 12
        assert configuration.perimeter == 22
        assert configuration.edge_count == 11
        assert line(1).n == 1

    def test_line_other_directions(self):
        for direction in range(6):
            configuration = line(5, direction=direction)
            assert configuration.n == 5
            assert configuration.perimeter == 8

    def test_staircase_attains_max_perimeter(self):
        for n in [2, 5, 9, 14]:
            configuration = staircase(n)
            assert configuration.perimeter == max_perimeter(n)
            assert configuration.triangle_count == 0

    def test_staircase_custom_steps(self):
        configuration = staircase(6, steps=[1, 1, 0, 0, 1])
        assert configuration.n == 6
        assert configuration.perimeter == 10
        with pytest.raises(ConfigurationError):
            staircase(4, steps=[0])

    def test_hexagon_sizes(self):
        for radius, expected in [(0, 1), (1, 7), (2, 19), (3, 37)]:
            assert hexagon(radius).n == expected

    def test_ring_sizes_and_holes(self):
        for radius in [1, 2, 3]:
            configuration = ring(radius)
            assert configuration.n == 6 * radius
            assert configuration.has_holes

    def test_parallelogram(self):
        configuration = parallelogram(3, 4)
        assert configuration.n == 12
        assert configuration.is_connected
        assert not configuration.has_holes

    def test_random_connected_is_connected_and_reproducible(self):
        a = random_connected(25, seed=7)
        b = random_connected(25, seed=7)
        c = random_connected(25, seed=8)
        assert a == b
        assert a != c
        assert a.is_connected

    def test_random_connected_compactness_reduces_perimeter(self):
        stringy = random_connected(40, seed=3, compactness=0.0)
        compact = random_connected(40, seed=3, compactness=0.95)
        assert compact.perimeter < stringy.perimeter

    def test_random_hole_free(self):
        for seed in range(5):
            configuration = random_hole_free(22, seed=seed)
            assert configuration.is_connected
            assert configuration.is_hole_free

    def test_property2_witness_structure(self):
        configuration, source, target = property2_witness()
        assert configuration.is_connected
        assert configuration.is_hole_free
        assert source in configuration
        assert target not in configuration

    def test_generators_reject_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            line(0)
        with pytest.raises(ConfigurationError):
            spiral(0)
        with pytest.raises(ConfigurationError):
            ring(0)
        with pytest.raises(ConfigurationError):
            parallelogram(0, 3)
