"""Unit tests for the triangular lattice coordinate system."""

import math

import pytest

from repro.errors import LatticeError
from repro.lattice.triangular import (
    DIRECTIONS,
    NUM_DIRECTIONS,
    add,
    are_adjacent,
    canonical_translation,
    common_neighbors,
    direction_between,
    direction_index,
    hex_distance,
    neighbor,
    neighborhood,
    neighbors,
    nodes_bounding_box,
    opposite_direction,
    rotate_ccw,
    rotate_cw,
    scale,
    subtract,
    to_cartesian,
    translate,
    triangle_faces_at,
)


class TestDirections:
    def test_six_directions(self):
        assert NUM_DIRECTIONS == 6
        assert len(DIRECTIONS) == 6
        assert len(set(DIRECTIONS)) == 6

    def test_directions_sum_to_zero(self):
        total = (sum(d[0] for d in DIRECTIONS), sum(d[1] for d in DIRECTIONS))
        assert total == (0, 0)

    def test_opposite_directions(self):
        for index, direction in enumerate(DIRECTIONS):
            opposite = DIRECTIONS[opposite_direction(index)]
            assert add(direction, opposite) == (0, 0)

    def test_direction_index_roundtrip(self):
        for index, direction in enumerate(DIRECTIONS):
            assert direction_index(direction) == index

    def test_direction_index_rejects_non_directions(self):
        with pytest.raises(LatticeError):
            direction_index((2, 0))

    def test_directions_are_unit_length_in_cartesian(self):
        for direction in DIRECTIONS:
            x, y = to_cartesian(direction)
            assert math.isclose(math.hypot(x, y), 1.0, rel_tol=1e-12)

    def test_directions_listed_counterclockwise(self):
        angles = [math.atan2(*reversed(to_cartesian(d))) % (2 * math.pi) for d in DIRECTIONS]
        assert angles == sorted(angles)


class TestNeighbors:
    def test_every_node_has_six_neighbors(self):
        for node in [(0, 0), (3, -2), (-5, 7)]:
            result = neighbors(node)
            assert len(result) == 6
            assert len(set(result)) == 6
            assert all(are_adjacent(node, nb) for nb in result)

    def test_neighbor_by_direction(self):
        assert neighbor((2, 3), 0) == (3, 3)
        assert neighbor((2, 3), 3) == (1, 3)
        assert neighbor((2, 3), 7) == neighbor((2, 3), 1)

    def test_adjacency_is_symmetric(self):
        for node in neighbors((4, -1)):
            assert are_adjacent(node, (4, -1))

    def test_not_adjacent_to_itself_or_distant_nodes(self):
        assert not are_adjacent((0, 0), (0, 0))
        assert not are_adjacent((0, 0), (2, 0))
        assert not are_adjacent((0, 0), (1, 1))

    def test_neighborhood_radius_two(self):
        ball = neighborhood((0, 0), radius=2)
        assert len(ball) == 18  # 6 + 12
        assert all(1 <= hex_distance((0, 0), node) <= 2 for node in ball)

    def test_neighborhood_rejects_negative_radius(self):
        with pytest.raises(LatticeError):
            neighborhood((0, 0), radius=-1)


class TestRotation:
    def test_rotation_cycles_through_directions(self):
        for index, direction in enumerate(DIRECTIONS):
            assert rotate_ccw(direction) == DIRECTIONS[(index + 1) % 6]
            assert rotate_cw(direction) == DIRECTIONS[(index - 1) % 6]

    def test_six_rotations_are_identity(self):
        vector = (3, -2)
        assert rotate_ccw(vector, 6) == vector
        assert rotate_cw(vector, 6) == vector

    def test_rotation_preserves_length(self):
        vector = (4, -1)
        original = math.hypot(*to_cartesian(vector))
        rotated = math.hypot(*to_cartesian(rotate_ccw(vector, 2)))
        assert math.isclose(original, rotated, rel_tol=1e-12)


class TestCommonNeighbors:
    def test_adjacent_nodes_share_exactly_two_neighbors(self):
        for direction in DIRECTIONS:
            a = (0, 0)
            b = direction
            shared = common_neighbors(a, b)
            assert len(shared) == 2
            brute = set(neighbors(a)) & set(neighbors(b))
            assert set(shared) == brute

    def test_non_adjacent_nodes_raise(self):
        with pytest.raises(LatticeError):
            common_neighbors((0, 0), (2, 0))


class TestDistanceAndEmbedding:
    def test_hex_distance_matches_bfs_on_small_ball(self):
        from collections import deque

        source = (0, 0)
        distances = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            if distances[current] >= 4:
                continue
            for nb in neighbors(current):
                if nb not in distances:
                    distances[nb] = distances[current] + 1
                    queue.append(nb)
        for node, distance in distances.items():
            assert hex_distance(source, node) == distance

    def test_cartesian_adjacent_distance_is_one(self):
        for nb in neighbors((3, 5)):
            ax, ay = to_cartesian((3, 5))
            bx, by = to_cartesian(nb)
            assert math.isclose(math.hypot(ax - bx, ay - by), 1.0, rel_tol=1e-12)

    def test_arithmetic_helpers(self):
        assert add((1, 2), (3, -1)) == (4, 1)
        assert subtract((1, 2), (3, -1)) == (-2, 3)
        assert scale((2, -1), 3) == (6, -3)
        assert direction_between((5, 5), (5, 6)) == 1


class TestBoundingBoxAndCanonical:
    def test_bounding_box(self):
        assert nodes_bounding_box([(1, 2), (-3, 4), (0, 0)]) == (-3, 0, 1, 4)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(LatticeError):
            nodes_bounding_box([])

    def test_canonical_translation_is_translation_invariant(self):
        nodes = {(2, 3), (3, 3), (2, 4)}
        shifted = translate(nodes, (-7, 11))
        assert canonical_translation(nodes) == canonical_translation(shifted)

    def test_canonical_translation_is_idempotent(self):
        nodes = {(2, 3), (3, 3), (2, 4)}
        once = canonical_translation(nodes)
        assert canonical_translation(once) == once

    def test_triangle_faces_anchored_once(self):
        up, down = triangle_faces_at((0, 0))
        assert set(up) == {(0, 0), (1, 0), (0, 1)}
        assert set(down) == {(0, 0), (1, 0), (1, -1)}
