"""The benchmark ledger's regression guard (``benchmarks/_emit.py``).

The ledger files are the repo's tracked perf trajectory; the guard makes
sure a re-run cannot silently replace a committed throughput number with
one more than 30% worse (the way ``engine_speedup_n1000`` once drifted
37x -> 25x without anyone noticing at emit time).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_EMIT_PATH = Path(__file__).parent.parent / "benchmarks" / "_emit.py"


@pytest.fixture(scope="module")
def emit():
    spec = importlib.util.spec_from_file_location("bench_emit_under_test", _EMIT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def read_ledger(path):
    with open(path) as fh:
        return json.load(fh)


def test_record_creates_and_merges_entries(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("alpha", path=ledger, n=10, iterations_per_second=100.0)
    emit.record("beta", path=ledger, n=20, speedup=3.0)
    data = read_ledger(ledger)
    assert data["alpha"] == {"n": 10, "iterations_per_second": 100.0}
    assert data["beta"] == {"n": 20, "speedup": 3.0}
    assert "_meta" in data


def test_small_regressions_and_improvements_pass(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, iterations_per_second=100.0)
    emit.record("bench", path=ledger, iterations_per_second=75.0)  # -25% is tolerated
    emit.record("bench", path=ledger, iterations_per_second=200.0)
    assert read_ledger(ledger)["bench"]["iterations_per_second"] == 200.0


def test_large_regression_is_refused(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, n=10, iterations_per_second=100.0)
    with pytest.raises(emit.BenchRegressionError, match="bench"):
        emit.record("bench", path=ledger, n=10, iterations_per_second=69.0)
    # The committed entry survives the refused overwrite.
    assert read_ledger(ledger)["bench"]["iterations_per_second"] == 100.0


def test_speedup_field_is_guarded(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("gate", path=ledger, speedup=37.0)
    with pytest.raises(emit.BenchRegressionError, match="37"):
        emit.record("gate", path=ledger, speedup=25.0)


def test_key_matching_rules_are_pinned(emit):
    """The guard's key-matching rules, spelled out (see _is_throughput_key)."""
    guarded = [
        "iterations_per_second",
        "activations_per_second",
        "fast_activations_per_second",
        "reference_activations_per_second",
        "iterations_per_second_n1000",
        "it_per_s",
        "sharded_it_per_s_n100000",
        "vector_it_per_s",
        "speedup",
        "speedup_n1000",
        "vector_speedup",
    ]
    unguarded = ["n", "seconds", "rounds", "engine", "wall_seconds", "speedups_note"]
    for key in guarded:
        assert emit._is_throughput_key(key), key
    for key in unguarded:
        assert not emit._is_throughput_key(key), key


def test_activations_per_second_regression_is_refused(emit, tmp_path):
    """The distributed-runtime rows are guarded like the chain rows."""
    ledger = tmp_path / "BENCH_test.json"
    emit.record("amoebot", path=ledger, activations_per_second=1_000_000.0)
    with pytest.raises(emit.BenchRegressionError, match="amoebot"):
        emit.record("amoebot", path=ledger, activations_per_second=500_000.0)


def test_suffixed_speedup_fields_are_guarded(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("adv", path=ledger, speedup_n1000=4.0)
    with pytest.raises(emit.BenchRegressionError, match="adv"):
        emit.record("adv", path=ledger, speedup_n1000=1.0)


def test_bench_ledger_dir_redirects_default_ledger_only(emit, tmp_path, monkeypatch):
    """CI machines set BENCH_LEDGER_DIR so the committed default ledger
    stays untouched; explicit path= callers (tests, subsystem ledgers) are
    honored verbatim."""
    scratch = tmp_path / "scratch"
    scratch.mkdir()
    monkeypatch.setenv("BENCH_LEDGER_DIR", str(scratch))
    committed_before = emit.RESULTS_PATH.read_text()
    emit.record("__scratch_probe__", activations_per_second=1.0)
    assert emit.RESULTS_PATH.read_text() == committed_before
    assert "__scratch_probe__" in read_ledger(scratch / emit.RESULTS_PATH.name)
    # Explicit paths are not redirected.
    explicit = tmp_path / "BENCH_explicit.json"
    emit.record("bench", path=explicit, iterations_per_second=5.0)
    assert read_ledger(explicit)["bench"]["iterations_per_second"] == 5.0
    assert not (scratch / "BENCH_explicit.json").exists()


def test_non_throughput_fields_are_not_guarded(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, n=1000, seconds=10.0)
    emit.record("bench", path=ledger, n=10, seconds=1.0)  # params may change freely
    assert read_ledger(ledger)["bench"]["n"] == 10


def test_force_overrides_the_guard(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, iterations_per_second=100.0)
    emit.record("bench", path=ledger, force=True, iterations_per_second=10.0)
    assert read_ledger(ledger)["bench"]["iterations_per_second"] == 10.0


def test_command_line_force_flag_overrides_the_guard(emit, tmp_path, monkeypatch):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, iterations_per_second=100.0)
    monkeypatch.setattr(sys, "argv", [*sys.argv, "--force"])
    emit.record("bench", path=ledger, iterations_per_second=10.0)
    assert read_ledger(ledger)["bench"]["iterations_per_second"] == 10.0
