"""The benchmark ledger's regression guard (``benchmarks/_emit.py``).

The ledger files are the repo's tracked perf trajectory; the guard makes
sure a re-run cannot silently replace a committed throughput number with
one more than 30% worse (the way ``engine_speedup_n1000`` once drifted
37x -> 25x without anyone noticing at emit time).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_EMIT_PATH = Path(__file__).parent.parent / "benchmarks" / "_emit.py"


@pytest.fixture(scope="module")
def emit():
    spec = importlib.util.spec_from_file_location("bench_emit_under_test", _EMIT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def read_ledger(path):
    with open(path) as fh:
        return json.load(fh)


def test_record_creates_and_merges_entries(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("alpha", path=ledger, n=10, iterations_per_second=100.0)
    emit.record("beta", path=ledger, n=20, speedup=3.0)
    data = read_ledger(ledger)
    assert data["alpha"] == {"n": 10, "iterations_per_second": 100.0}
    assert data["beta"] == {"n": 20, "speedup": 3.0}
    assert "_meta" in data


def test_small_regressions_and_improvements_pass(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, iterations_per_second=100.0)
    emit.record("bench", path=ledger, iterations_per_second=75.0)  # -25% is tolerated
    emit.record("bench", path=ledger, iterations_per_second=200.0)
    assert read_ledger(ledger)["bench"]["iterations_per_second"] == 200.0


def test_large_regression_is_refused(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, n=10, iterations_per_second=100.0)
    with pytest.raises(emit.BenchRegressionError, match="bench"):
        emit.record("bench", path=ledger, n=10, iterations_per_second=69.0)
    # The committed entry survives the refused overwrite.
    assert read_ledger(ledger)["bench"]["iterations_per_second"] == 100.0


def test_speedup_field_is_guarded(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("gate", path=ledger, speedup=37.0)
    with pytest.raises(emit.BenchRegressionError, match="37"):
        emit.record("gate", path=ledger, speedup=25.0)


def test_non_throughput_fields_are_not_guarded(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, n=1000, seconds=10.0)
    emit.record("bench", path=ledger, n=10, seconds=1.0)  # params may change freely
    assert read_ledger(ledger)["bench"]["n"] == 10


def test_force_overrides_the_guard(emit, tmp_path):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, iterations_per_second=100.0)
    emit.record("bench", path=ledger, force=True, iterations_per_second=10.0)
    assert read_ledger(ledger)["bench"]["iterations_per_second"] == 10.0


def test_command_line_force_flag_overrides_the_guard(emit, tmp_path, monkeypatch):
    ledger = tmp_path / "BENCH_test.json"
    emit.record("bench", path=ledger, iterations_per_second=100.0)
    monkeypatch.setattr(sys, "argv", [*sys.argv, "--force"])
    emit.record("bench", path=ledger, iterations_per_second=10.0)
    assert read_ledger(ledger)["bench"]["iterations_per_second"] == 10.0
