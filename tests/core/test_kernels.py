"""Tests for the weight-kernel protocol (:mod:`repro.core.kernels`).

Two contracts live here:

* **Bit-transparency of the default kernel.**  An engine constructed
  without a kernel must behave exactly like one constructed with an
  explicit :class:`CompressionKernel` — same trajectory, same random
  stream.  (The committed golden traces separately pin that this joint
  behaviour equals the pre-kernel engines.)
* **Table correctness.**  Every kernel's precomputed acceptance tables
  must equal the literal ``min(1, ...)`` weight expressions from the
  papers, entry for entry.
"""

import pytest

from repro.core.fast_chain import FastCompressionChain
from repro.core.kernels import (
    COLOR_DELTA_RANGE,
    EDGE_DELTA_RANGE,
    KERNEL_MODES,
    MOVEMENT_REJECTION_REASONS,
    SWAP_DELTA_RANGE,
    SWAP_REJECTION_REASONS,
    BridgingKernel,
    CompressionKernel,
    SeparationKernel,
    WeightKernel,
)
from repro.core.markov_chain import REJECTION_REASONS, CompressionMarkovChain
from repro.core.vector_chain import VectorCompressionChain
from repro.errors import AlgorithmError, ConfigurationError
from repro.lattice.shapes import line, spiral

ALL_ENGINES = (CompressionMarkovChain, FastCompressionChain, VectorCompressionChain)


def _halves_colors(configuration):
    ordered = sorted(configuration.nodes)
    half = len(ordered) // 2
    return {node: (0 if i < half else 1) for i, node in enumerate(ordered)}


class TestKernelProtocol:
    def test_modes_and_lanes(self):
        compression = CompressionKernel(4.0)
        bridging = BridgingKernel(4.0, 2.0, land=frozenset({(0, 0)}))
        separation = SeparationKernel(4.0, 2.0, colors={(0, 0): 0})
        assert compression.mode == "edge" and compression.lanes == 1
        assert bridging.mode == "edge_site" and bridging.lanes == 1
        assert separation.mode == "edge_color" and separation.lanes == 2
        for kernel in (compression, bridging, separation):
            assert kernel.mode in KERNEL_MODES

    def test_rejection_reason_sets(self):
        assert REJECTION_REASONS == MOVEMENT_REJECTION_REASONS
        assert CompressionKernel(4.0).rejection_reasons == MOVEMENT_REJECTION_REASONS
        assert (
            SeparationKernel(4.0, 2.0, colors={(0, 0): 0}).rejection_reasons
            == MOVEMENT_REJECTION_REASONS + SWAP_REJECTION_REASONS
        )

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CompressionKernel(0.0)
        with pytest.raises(AlgorithmError):
            BridgingKernel(4.0, -1.0, land=frozenset())
        with pytest.raises(AlgorithmError):
            SeparationKernel(4.0, 0.0, colors={(0, 0): 0})
        with pytest.raises(AlgorithmError):
            SeparationKernel(4.0, 2.0, colors={(0, 0): 0}, swap_probability=1.5)
        with pytest.raises(ConfigurationError):
            SeparationKernel(4.0, 2.0, colors={})
        with pytest.raises(ConfigurationError):
            SeparationKernel(4.0, 2.0, colors={(0, 0): 255})  # byte plane overflow


class TestAcceptanceTables:
    def test_compression_list_is_the_literal_weight(self):
        kernel = CompressionKernel(3.5)
        table = kernel.acceptance_list()
        assert len(table) == len(EDGE_DELTA_RANGE)
        for delta in EDGE_DELTA_RANGE:
            assert table[delta + 6] == min(1.0, 3.5 ** delta)

    def test_bridging_rows_are_the_literal_weight(self):
        kernel = BridgingKernel(4.0, 2.5, land=frozenset({(0, 0)}))
        rows = kernel.acceptance_rows()
        assert len(rows) == 3
        for site_delta in (-1, 0, 1):
            for delta in EDGE_DELTA_RANGE:
                expected = min(1.0, (4.0 ** delta) * (2.5 ** (-site_delta)))
                assert rows[site_delta + 1][delta + 6] == expected

    def test_separation_tables_are_the_literal_weights(self):
        kernel = SeparationKernel(4.0, 3.0, colors={(0, 0): 0})
        rows = kernel.movement_rows()
        assert len(rows) == len(COLOR_DELTA_RANGE)
        for a_delta in COLOR_DELTA_RANGE:
            for delta in EDGE_DELTA_RANGE:
                expected = min(1.0, (4.0 ** delta) * (3.0 ** a_delta))
                assert rows[a_delta + 5][delta + 6] == expected
        swap = kernel.swap_row()
        assert len(swap) == len(SWAP_DELTA_RANGE)
        for delta in SWAP_DELTA_RANGE:
            assert swap[delta + 10] == min(1.0, 3.0 ** delta)

    def test_site_weight_partitions_the_lattice(self):
        kernel = BridgingKernel(4.0, 2.0, land=frozenset({(0, 0), (1, 0)}))
        assert kernel.site_weight((0, 0)) == 0
        assert kernel.site_weight((5, 5)) == 1


class TestDefaultKernelTransparency:
    @pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.__name__)
    def test_explicit_compression_kernel_matches_default(self, engine):
        """kernel=CompressionKernel(lam) is indistinguishable from lam alone."""
        implicit = engine(line(25), lam=4.0, seed=5)
        explicit = engine(line(25), seed=5, kernel=CompressionKernel(4.0))
        for _ in range(1500):
            assert explicit.step() == implicit.step()
        assert explicit.occupied == implicit.occupied
        assert explicit.rejection_counts == implicit.rejection_counts
        assert isinstance(implicit.kernel, CompressionKernel)

    @pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.__name__)
    def test_lam_kernel_disagreement_is_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine(line(5), lam=2.0, kernel=CompressionKernel(4.0))

    @pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.__name__)
    def test_missing_lam_without_kernel_is_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine(line(5))


class TestEngineKernelSupport:
    def test_vector_engine_drives_all_registered_kernel_modes(self):
        """The numpy pass now evaluates the aux-plane kernels too."""
        colors = _halves_colors(spiral(12))
        separation = VectorCompressionChain(
            spiral(12), kernel=SeparationKernel(4.0, 2.0, colors=colors)
        )
        bridging = VectorCompressionChain(
            line(6), kernel=BridgingKernel(4.0, 2.0, land=frozenset(line(6).nodes))
        )
        separation.run(200)
        bridging.run(200)
        assert separation.iterations == bridging.iterations == 200

    def test_vector_engine_refuses_unknown_kernel_modes_actionably(self):
        """A future kernel mode without a vectorized pass must fail loudly,
        naming the kernel, its mode, and the engines that can drive it."""

        class FrontierKernel:
            mode = "edge_frontier"
            name = "frontier"

        with pytest.raises(ConfigurationError) as excinfo:
            VectorCompressionChain(line(6), kernel=FrontierKernel())
        message = str(excinfo.value)
        assert "FrontierKernel" in message
        assert "'edge_frontier'" in message
        assert "engine='fast'" in message
        assert "engine='reference'" in message

    def test_scalar_engines_reject_mismatched_color_maps(self):
        kernel = SeparationKernel(4.0, 2.0, colors={(0, 0): 0, (9, 9): 1})
        for engine in (CompressionMarkovChain, FastCompressionChain):
            with pytest.raises(ConfigurationError):
                engine(line(2), kernel=kernel)

    def test_kernel_accessors_guard_their_mode(self):
        chain = FastCompressionChain(line(8), lam=4.0, seed=0)
        with pytest.raises(ConfigurationError):
            chain.site_count
        with pytest.raises(ConfigurationError):
            chain.color_map()
