"""Tests for Algorithm M: the compression Markov chain."""

import pytest

from repro.core.fast_chain import FastCompressionChain
from repro.core.markov_chain import REJECTION_REASONS, CompressionMarkovChain, StepResult
from repro.errors import ConfigurationError
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.shapes import line, random_connected, ring, spiral


class TestConstruction:
    def test_requires_connected_start(self):
        with pytest.raises(ConfigurationError):
            CompressionMarkovChain(ParticleConfiguration([(0, 0), (5, 5)]), lam=4.0)

    def test_requires_positive_lambda(self, line10):
        with pytest.raises(ConfigurationError):
            CompressionMarkovChain(line10, lam=0.0)

    def test_initial_state_exposed(self, line10):
        chain = CompressionMarkovChain(line10, lam=4.0, seed=0)
        assert chain.n == 10
        assert chain.configuration == line10
        assert chain.edge_count == 9
        assert chain.iterations == 0


class TestStepAccounting:
    def test_step_results_have_valid_reasons(self, line10):
        chain = CompressionMarkovChain(line10, lam=4.0, seed=1)
        for _ in range(500):
            result = chain.step()
            assert isinstance(result, StepResult)
            assert result.reason in REJECTION_REASONS + ("moved",)
            assert result.moved == (result.reason == "moved")
        assert chain.iterations == 500
        counts = chain.rejection_counts
        assert chain.accepted_moves + sum(counts.values()) == 500

    def test_incremental_edge_count_matches_recount(self):
        chain = CompressionMarkovChain(random_connected(20, seed=9), lam=4.0, seed=2)
        for _ in range(10):
            chain.run(200)
            assert chain.edge_count == chain.configuration.edge_count

    def test_run_with_callback(self, line10):
        seen = []
        chain = CompressionMarkovChain(line10, lam=4.0, seed=3)
        chain.run(50, callback=lambda iteration, result: seen.append(iteration))
        assert seen == list(range(1, 51))

    def test_negative_iterations_rejected(self, line10):
        chain = CompressionMarkovChain(line10, lam=4.0, seed=0)
        with pytest.raises(ConfigurationError):
            chain.run(-1)

    def test_reproducibility(self, line10):
        first = CompressionMarkovChain(line10, lam=4.0, seed=42)
        second = CompressionMarkovChain(line10, lam=4.0, seed=42)
        first.run(2000)
        second.run(2000)
        assert first.configuration == second.configuration
        assert first.accepted_moves == second.accepted_moves


class TestInvariants:
    """The structural guarantees of Section 3.4, checked along real trajectories."""

    def test_connectivity_is_preserved(self):
        chain = CompressionMarkovChain(random_connected(25, seed=4), lam=4.0, seed=5)
        for _ in range(20):
            chain.run(500)
            assert chain.configuration.is_connected

    def test_hole_free_configurations_stay_hole_free(self):
        chain = CompressionMarkovChain(line(25), lam=4.0, seed=6)
        for _ in range(20):
            chain.run(500)
            assert chain.configuration.is_hole_free

    def test_holes_are_eventually_eliminated(self):
        """Lemma 3.8 at simulation scale: the ring's hole disappears and never returns."""
        chain = CompressionMarkovChain(ring(2), lam=4.0, seed=7)
        hole_free_since = None
        for block in range(60):
            chain.run(1000)
            if not chain.configuration.has_holes:
                hole_free_since = block
                break
        assert hole_free_since is not None, "the hole was never eliminated"
        for _ in range(10):
            chain.run(500)
            assert chain.configuration.is_hole_free

    def test_particle_count_is_conserved(self):
        chain = CompressionMarkovChain(line(15), lam=4.0, seed=8)
        chain.run(5000)
        assert chain.configuration.n == 15

    def test_perimeter_matches_edge_count_when_hole_free(self):
        chain = CompressionMarkovChain(line(20), lam=4.0, seed=9)
        chain.run(5000)
        configuration = chain.configuration
        assert configuration.is_hole_free
        assert chain.perimeter() == 3 * 20 - chain.edge_count - 3


class TestConfigurationCache:
    """The configuration value object is cached between accepted moves."""

    @pytest.mark.parametrize("engine", [CompressionMarkovChain, FastCompressionChain])
    def test_repeated_access_returns_same_object(self, engine):
        chain = engine(line(10), lam=4.0, seed=0)
        first = chain.configuration
        # No moves in between: repeated access must do no extra work, which
        # object identity proves (a rebuild would allocate a fresh instance).
        assert chain.configuration is first
        assert chain.configuration is first

    @pytest.mark.parametrize("engine", [CompressionMarkovChain, FastCompressionChain])
    def test_accepted_move_invalidates_cache(self, engine):
        chain = engine(line(10), lam=4.0, seed=0)
        before = chain.configuration
        while chain.accepted_moves == 0:
            chain.step()
        after = chain.configuration
        assert after is not before
        assert after != before
        assert after is chain.configuration  # cached again until the next move

    def test_rejections_do_not_invalidate_cache(self):
        chain = CompressionMarkovChain(line(10), lam=4.0, seed=0)
        cached = chain.configuration
        while True:
            result = chain.step()
            if not result.moved:
                break
            cached = chain.configuration
        assert chain.configuration is cached


class TestBiasDirection:
    def test_large_lambda_compresses_small_lambda_does_not(self):
        compress = CompressionMarkovChain(line(30), lam=5.0, seed=10)
        expand = CompressionMarkovChain(line(30), lam=1.0, seed=10)
        compress.run(60_000)
        expand.run(60_000)
        assert compress.perimeter() < expand.perimeter()
        assert compress.edge_count > expand.edge_count

    def test_lambda_one_is_unbiased_random_walk_on_configurations(self):
        chain = CompressionMarkovChain(line(12), lam=1.0, seed=11)
        chain.run(3000)
        # With lambda = 1 every valid proposal is accepted, so the
        # Metropolis filter never rejects.
        assert chain.rejection_counts["metropolis_rejected"] == 0
