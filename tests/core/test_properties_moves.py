"""Tests for Properties 1 and 2 and the move-legality layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.moves import (
    Move,
    apply_move,
    classify_move,
    enumerate_moves_by_property,
    enumerate_valid_moves,
    is_valid_move,
    move_edge_delta,
    neighbor_count,
)
from repro.core.properties import (
    common_occupied_neighbors,
    joint_neighborhood,
    satisfies_either_property,
    satisfies_property_1,
    satisfies_property_2,
)
from repro.errors import InvalidMoveError, LatticeError
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.shapes import hexagon, line, property2_witness, random_hole_free, ring
from repro.lattice.triangular import are_adjacent, neighbors


class TestJointNeighborhood:
    def test_eight_nodes_in_ring_order(self):
        ring_nodes = joint_neighborhood((0, 0), (1, 0))
        assert len(ring_nodes) == 8
        assert len(set(ring_nodes)) == 8
        # Consecutive ring nodes are lattice-adjacent (cyclically).
        for i, node in enumerate(ring_nodes):
            assert are_adjacent(node, ring_nodes[(i + 1) % 8])
        # The ring is exactly the union of the two neighborhoods minus the endpoints.
        expected = (set(neighbors((0, 0))) | set(neighbors((1, 0)))) - {(0, 0), (1, 0)}
        assert set(ring_nodes) == expected

    def test_requires_adjacency(self):
        with pytest.raises(LatticeError):
            joint_neighborhood((0, 0), (2, 0))

    def test_common_occupied_neighbors(self):
        occupied = {(0, 0), (1, 0), (0, 1)}
        assert set(common_occupied_neighbors(occupied, (0, 0), (1, 0))) == {(0, 1)}
        assert common_occupied_neighbors({(0, 0), (1, 0)}, (0, 0), (1, 0)) == ()


class TestProperty1:
    def test_sliding_along_a_cluster_satisfies_property_1(self, triangle):
        # The particle at (0, 1) sliding to (1, 1) keeps contact through (1, 0).
        occupied = triangle.nodes
        assert satisfies_property_1(occupied, (0, 1), (1, 1))
        assert satisfies_either_property(occupied, (0, 1), (1, 1))

    def test_line_interior_particle_fails_both_properties(self):
        occupied = line(5).nodes
        # The interior particle at (2, 0) moving up has neighbors on both
        # sides that are not connected within the joint neighborhood.
        assert not satisfies_property_1(occupied, (2, 0), (2, 1))
        assert not satisfies_property_2(occupied, (2, 0), (2, 1))

    def test_line_endpoint_has_property_1_move(self):
        occupied = line(5).nodes
        assert satisfies_property_1(occupied, (0, 0), (1, -1))

    def test_symmetry_in_source_and_target(self, random_configs):
        """Both properties are symmetric in l and l' (needed for reversibility)."""
        for configuration in random_configs:
            occupied = configuration.nodes
            for move in enumerate_valid_moves(occupied)[:20]:
                after = apply_move(occupied, move)
                assert satisfies_property_1(occupied, move.source, move.target) == \
                    satisfies_property_1(after, move.target, move.source)
                assert satisfies_property_2(occupied, move.source, move.target) == \
                    satisfies_property_2(after, move.target, move.source)


class TestProperty2:
    def test_witness_move_is_property_2_only(self):
        configuration, source, target = property2_witness()
        occupied = configuration.nodes
        assert satisfies_property_2(occupied, source, target)
        assert not satisfies_property_1(occupied, source, target)
        assert is_valid_move(occupied, Move(source, target))
        assert classify_move(occupied, Move(source, target)) == "property2"

    def test_properties_are_mutually_exclusive(self, random_configs):
        """Property 1 needs |S| >= 1 while Property 2 needs |S| = 0."""
        for configuration in random_configs:
            occupied = configuration.nodes
            grouped = enumerate_moves_by_property(occupied)
            assert not (set(grouped["property1"]) & set(grouped["property2"]))

    def test_isolated_sides_fail_property_2(self):
        # Two particles with an empty target whose far side has no neighbors.
        occupied = {(0, 0), (0, 1)}
        assert not satisfies_property_2(occupied, (0, 1), (1, 1))


class TestMoveLegality:
    def test_five_neighbor_particles_cannot_move(self):
        # Remove one outer particle of the flower: the center then has 5 neighbors.
        config = hexagon(1).remove((1, 0))
        occupied = config.nodes
        assert neighbor_count(occupied, (0, 0), exclude=((0, 0),)) == 5
        assert not is_valid_move(occupied, Move((0, 0), (1, 0)))
        # And enumerate_valid_moves never proposes it.
        assert all(move.source != (0, 0) for move in enumerate_valid_moves(occupied))

    def test_occupied_target_is_invalid(self, flower):
        assert not is_valid_move(flower.nodes, Move((1, 0), (0, 0)))

    def test_missing_source_raises(self, flower):
        with pytest.raises(InvalidMoveError):
            is_valid_move(flower.nodes, Move((9, 9), (9, 10)))

    def test_move_edge_delta_matches_configuration_recount(self, random_configs):
        for configuration in random_configs:
            occupied = configuration.nodes
            for move in enumerate_valid_moves(occupied)[:15]:
                delta = move_edge_delta(occupied, move)
                after = ParticleConfiguration(apply_move(occupied, move))
                assert after.edge_count - configuration.edge_count == delta

    def test_apply_move_validation(self, flower):
        with pytest.raises(InvalidMoveError):
            apply_move(flower.nodes, Move((9, 9), (9, 10)))
        with pytest.raises(InvalidMoveError):
            apply_move(flower.nodes, Move((1, 0), (0, 0)))

    def test_valid_moves_preserve_connectivity_and_hole_freeness(self):
        """The structural content of Lemmas 3.1 and 3.2 checked exhaustively."""
        for seed in range(6):
            configuration = random_hole_free(14, seed=seed)
            occupied = configuration.nodes
            for move in enumerate_valid_moves(occupied):
                after = ParticleConfiguration(apply_move(occupied, move))
                assert after.is_connected
                assert after.is_hole_free

    def test_valid_moves_from_holey_configuration_preserve_connectivity(self, hex_ring):
        occupied = hex_ring.nodes
        for move in enumerate_valid_moves(occupied):
            after = ParticleConfiguration(apply_move(occupied, move))
            assert after.is_connected

    def test_reverse_move_is_also_valid(self, random_configs):
        """Lemma 3.9: valid moves between hole-free states are reversible."""
        for configuration in random_configs:
            if configuration.has_holes:
                continue
            occupied = configuration.nodes
            for move in enumerate_valid_moves(occupied)[:15]:
                after = apply_move(occupied, move)
                assert is_valid_move(after, move.reversed())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 18))
def test_property_checks_only_depend_on_local_neighborhood(seed, n):
    """Adding particles far away never changes the outcome of the property checks."""
    configuration = random_hole_free(n, seed=seed)
    occupied = set(configuration.nodes)
    moves = enumerate_valid_moves(occupied)
    far_particle = (1000, 1000)
    augmented = occupied | {far_particle}
    for move in moves[:10]:
        assert satisfies_property_1(occupied, move.source, move.target) == \
            satisfies_property_1(augmented, move.source, move.target)
        assert satisfies_property_2(occupied, move.source, move.target) == \
            satisfies_property_2(augmented, move.source, move.target)
