"""Property-based randomized invariant tests for the chain engines.

Over dozens of seeded random runs these assert the paper's structural
guarantees along real trajectories — connectivity is never broken
(Lemma 3.1) and hole-free configurations stay hole-free (Lemma 3.2) —
and that the engines' incrementally maintained counters (``e(sigma)``,
``p(sigma)``, hole counts) always agree with a from-scratch
:class:`~repro.lattice.configuration.ParticleConfiguration` recomputation.

The checks run primarily against the fast engine (whose incremental
bookkeeping is the non-obvious part); a reference-engine subset guards
the same invariants on the transparent implementation.
"""

import pytest

from repro.core.fast_chain import FastCompressionChain
from repro.core.markov_chain import CompressionMarkovChain
from repro.core.sharded_chain import ShardedCompressionChain
from repro.core.vector_chain import VectorCompressionChain
from repro.lattice.shapes import random_connected, random_hole_free

#: lambdas cycled across the randomized runs: expanding, neutral and
#: compressing regimes.
LAMBDAS = (1.0, 2.0, 4.0, 6.0)

#: (seed, n, lambda, hole-free start?) for the randomized sweep — 52 runs.
RUN_MATRIX = [
    (seed, 12 + (seed % 5) * 5, LAMBDAS[seed % len(LAMBDAS)], seed % 2 == 0)
    for seed in range(52)
]


def random_start(n, seed, hole_free):
    if hole_free:
        return random_hole_free(n, seed=seed)
    return random_connected(n, seed=seed, compactness=0.3 * (seed % 3))


def check_invariants(chain, start_was_hole_free, context):
    configuration = chain.configuration
    # Lemma 3.1: every reachable configuration is connected.
    assert configuration.is_connected, f"{context}: connectivity broken"
    # Lemma 3.2: no move creates a hole in a hole-free configuration.
    if start_was_hole_free:
        assert configuration.is_hole_free, f"{context}: hole created from hole-free start"
    # Incremental counters match full recomputation.
    assert chain.edge_count == configuration.edge_count, f"{context}: edge count drifted"
    assert chain.perimeter() == configuration.perimeter, f"{context}: perimeter drifted"
    assert chain.hole_count() == len(configuration.holes), f"{context}: hole count drifted"
    assert configuration.n == chain.n, f"{context}: particle count not conserved"


@pytest.mark.slow
@pytest.mark.parametrize("seed,n,lam,hole_free", RUN_MATRIX)
def test_randomized_invariants_fast_engine(seed, n, lam, hole_free):
    start = random_start(n, seed, hole_free)
    hole_free_start = start.is_hole_free  # random_connected may be hole-free by luck
    chain = FastCompressionChain(start, lam=lam, seed=seed)
    for block in range(4):
        chain.run(400)
        check_invariants(chain, hole_free_start, f"seed={seed} block={block}")


@pytest.mark.slow
@pytest.mark.parametrize("seed,n,lam,hole_free", RUN_MATRIX[::2])
def test_randomized_invariants_vector_engine(seed, n, lam, hole_free):
    """The vector engine's numpy passes keep the same paper invariants."""
    start = random_start(n, seed, hole_free)
    hole_free_start = start.is_hole_free
    chain = VectorCompressionChain(start, lam=lam, seed=seed)
    for block in range(4):
        chain.run(400)
        check_invariants(chain, hole_free_start, f"vector seed={seed} block={block}")


@pytest.mark.slow
@pytest.mark.parametrize("seed,n,lam,hole_free", RUN_MATRIX[1::4])
def test_randomized_invariants_sharded_engine(seed, n, lam, hole_free):
    """The sharded engine's tile-parallel passes keep the same invariants
    (with the tiled path forced on by a tiny shard threshold)."""
    import repro.core.sharded_chain as sharded_chain

    start = random_start(n, seed, hole_free)
    hole_free_start = start.is_hole_free
    chain = ShardedCompressionChain(start, lam=lam, seed=seed, tiles=(2, 2), workers=2)
    original = sharded_chain._MIN_SHARD_PASS
    sharded_chain._MIN_SHARD_PASS = 1
    try:
        for block in range(4):
            chain.run(400)
            check_invariants(chain, hole_free_start, f"sharded seed={seed} block={block}")
    finally:
        sharded_chain._MIN_SHARD_PASS = original


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(10))
def test_randomized_invariants_reference_engine(seed):
    start = random_start(20, seed, hole_free=seed % 2 == 0)
    hole_free_start = start.is_hole_free
    chain = CompressionMarkovChain(start, lam=LAMBDAS[seed % len(LAMBDAS)], seed=seed)
    for block in range(3):
        chain.run(300)
        check_invariants(chain, hole_free_start, f"reference seed={seed} block={block}")


@pytest.mark.parametrize(
    "engine", [FastCompressionChain, VectorCompressionChain, ShardedCompressionChain]
)
def test_holey_start_fallback_then_euler_lock_in(engine):
    """The fast engines' perimeter/hole fallback path for holey starts.

    A start with holes must report *exact* ``perimeter()`` and
    ``hole_count()`` (from full recomputation, since ``p = 3n - 3 - e``
    only holds hole-free) until the holes vanish; once they do, the
    engine must lock into the O(1) Euler-identity path permanently and
    keep agreeing with recomputation.
    """
    start = random_connected(28, seed=104)  # chosen seed: starts with holes
    assert not start.is_hole_free, "fixture must exercise the holey fallback"
    chain = engine(start, lam=5.0, seed=9)
    assert chain._hole_free is False
    saw_holey_phase = False
    locked_at = None
    for block in range(60):
        exact = chain.configuration
        # Exactness of the fallback (and, later, of the O(1) path).
        assert chain.perimeter() == exact.perimeter, f"block {block}"
        assert chain.hole_count() == len(exact.holes), f"block {block}"
        if not chain._hole_free:
            saw_holey_phase = saw_holey_phase or len(exact.holes) > 0
        if chain._hole_free:
            # Lock-in: the flag never clears, and the Euler identity holds.
            locked_at = block if locked_at is None else locked_at
            assert chain.perimeter() == 3 * chain.n - 3 - chain.edge_count
        chain.run(600)
    assert saw_holey_phase, "test never exercised the exact fallback"
    assert locked_at is not None, "holes never vanished; raise the block budget"
    assert chain._hole_free, "lock-in must be permanent (Lemma 3.2)"


@pytest.mark.slow
def test_holes_never_reappear_once_eliminated():
    """Once a holey start reaches the hole-free space it stays there (Lemma 3.2)."""
    for seed in (0, 1, 2):
        start = random_connected(30, seed=100 + seed)
        chain = FastCompressionChain(start, lam=5.0, seed=seed)
        was_hole_free = False
        for _ in range(25):
            chain.run(1000)
            # Recompute from scratch rather than trusting the engine's own
            # hole bookkeeping (which is itself under test here).
            hole_free_now = chain.configuration.is_hole_free
            if was_hole_free:
                assert hole_free_now, f"seed={seed}: a hole reappeared"
            was_hole_free = was_hole_free or hole_free_now
