"""Tests for the energy functions and the Metropolis filter."""

import math

import pytest

from repro.core.energy import (
    CompressionEnergy,
    edge_hamiltonian,
    log_weight,
    perimeter_weight,
    weight,
)
from repro.core.metropolis import MetropolisFilter, acceptance_probability
from repro.errors import AnalysisError
from repro.lattice.shapes import hexagon, line, spiral


class TestEnergy:
    def test_hamiltonian_is_negative_edge_count(self, flower):
        assert edge_hamiltonian(flower) == -12

    def test_weight_forms_agree_up_to_constant(self):
        """lambda^e and lambda^{-p} differ by the constant lambda^{3n-3} (Corollary 3.14)."""
        lam = 3.0
        for configuration in [line(8), hexagon(1), spiral(12)]:
            n = configuration.n
            ratio = weight(configuration, lam) / perimeter_weight(configuration, lam)
            assert math.isclose(ratio, lam ** (3 * n - 3), rel_tol=1e-9)

    def test_log_weight(self, flower):
        assert math.isclose(log_weight(flower, 2.0), 12 * math.log(2.0))

    def test_compressed_configurations_have_lower_energy(self):
        compressed = spiral(20)
        stretched = line(20)
        energy = CompressionEnergy(lam=4.0)
        assert energy.hamiltonian(compressed) < energy.hamiltonian(stretched)
        assert energy.weight(compressed) > energy.weight(stretched)

    def test_weight_ratio_is_local(self):
        energy = CompressionEnergy(lam=2.0)
        assert energy.weight_ratio(2) == 4.0
        assert energy.weight_ratio(-1) == 0.5

    def test_invalid_lambda(self):
        with pytest.raises(AnalysisError):
            CompressionEnergy(lam=0.0)
        with pytest.raises(AnalysisError):
            weight(line(3), -1.0)


class TestMetropolis:
    def test_acceptance_probability_clipping(self):
        assert acceptance_probability(4.0, 2) == 1.0
        assert acceptance_probability(4.0, -1) == 0.25
        assert acceptance_probability(0.5, -1) == 1.0
        assert acceptance_probability(0.5, 2) == 0.25

    def test_invalid_lambda_rejected(self):
        with pytest.raises(AnalysisError):
            acceptance_probability(0.0, 1)
        with pytest.raises(AnalysisError):
            MetropolisFilter(lam=-2.0)

    def test_filter_matches_condition_3(self):
        """q < lambda^(e'-e) is exactly the paper's acceptance rule."""
        metropolis = MetropolisFilter(lam=4.0, seed=0)
        assert metropolis.accept_with_uniform(edge_delta=-1, q=0.2)
        assert not metropolis.accept_with_uniform(edge_delta=-1, q=0.3)
        assert metropolis.accept_with_uniform(edge_delta=3, q=0.999999)

    def test_empirical_acceptance_rate_matches_probability(self):
        metropolis = MetropolisFilter(lam=4.0, seed=123)
        trials = 20_000
        accepted = sum(metropolis.accept(-1) for _ in range(trials))
        assert abs(accepted / trials - 0.25) < 0.02

    def test_uphill_moves_always_accepted(self):
        metropolis = MetropolisFilter(lam=4.0, seed=5)
        assert all(metropolis.accept(1) for _ in range(1000))

    def test_detailed_balance_of_acceptance_ratios(self):
        """acceptance(delta) / acceptance(-delta) == lambda^delta for every delta."""
        lam = 3.0
        for delta in range(-4, 5):
            forward = acceptance_probability(lam, delta)
            backward = acceptance_probability(lam, -delta)
            assert math.isclose(forward / backward, lam ** delta, rel_tol=1e-12)
