"""Differential-testing harness: the fast engine against the reference engine.

The contract under test is the one documented in :mod:`repro.core`:
seeded identically (same seed, same draw block), the grid-based
:class:`~repro.core.fast_chain.FastCompressionChain` and the hash-map
:class:`~repro.core.markov_chain.CompressionMarkovChain` must produce
bit-identical trajectories — the same proposal every iteration, resolved
the same way (identical move, rejection reason and edge delta), with
identical running edge counts, perimeters and rejection tallies.

Lockstep runs cover the paper's standard line start, maximally compressed
spirals, and random connected starts (with and without holes), across
compressing (``lambda > 3.42``), neutral (``lambda = 1``) and expanding
(``lambda < 2.17``) regimes.
"""

import pytest

from repro.core.fast_chain import (
    RING_OFFSETS,
    FastCompressionChain,
    OccupancyGrid,
    move_tables,
)
from repro.core.markov_chain import CompressionMarkovChain
from repro.core.properties import satisfies_either_property
from repro.errors import ConfigurationError
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.shapes import line, random_connected, ring, spiral
from repro.lattice.triangular import DIRECTIONS, neighbors

#: name -> (start configuration, lambda, lockstep iterations)
LOCKSTEP_CASES = {
    "line20_compressing": (line(20), 4.0, 2500),
    "line35_strong_bias": (line(35), 6.0, 2500),
    "spiral25_compressing": (spiral(25), 4.0, 2000),
    "spiral40_expanding": (spiral(40), 1.5, 2000),
    "random24_with_holes": (random_connected(24, seed=11), 4.0, 2000),
    "random30_compact": (random_connected(30, seed=23, compactness=0.6), 2.0, 2000),
    "ring2_hole_elimination": (ring(2), 4.0, 2000),
    "unbiased_random_walk": (line(15), 1.0, 2000),
}


def engine_pair(initial, lam, seed):
    """A (reference, fast) pair seeded identically."""
    return (
        CompressionMarkovChain(initial, lam=lam, seed=seed),
        FastCompressionChain(initial, lam=lam, seed=seed),
    )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(LOCKSTEP_CASES))
def test_lockstep_trajectories_are_identical(name):
    initial, lam, iterations = LOCKSTEP_CASES[name]
    reference, fast = engine_pair(initial, lam, seed=7)
    for iteration in range(iterations):
        expected = reference.step()
        actual = fast.step()
        assert actual == expected, (
            f"{name}: trajectories diverged at iteration {iteration}: "
            f"reference={expected}, fast={actual}"
        )
        assert fast.edge_count == reference.edge_count, f"{name}@{iteration}"
        if iteration % 250 == 0:
            assert fast.perimeter() == reference.perimeter(), f"{name}@{iteration}"
    assert fast.occupied == reference.occupied
    assert fast.accepted_moves == reference.accepted_moves
    assert fast.rejection_counts == reference.rejection_counts
    assert fast.perimeter() == reference.perimeter()
    assert fast.hole_count() == reference.hole_count()
    assert fast.configuration == reference.configuration


@pytest.mark.slow
def test_block_runs_match_lockstep_runs():
    """run(k) must consume the tape exactly like k step() calls."""
    initial = line(40)
    stepped = FastCompressionChain(initial, lam=4.0, seed=3)
    blocked = FastCompressionChain(initial, lam=4.0, seed=3)
    for _ in range(3000):
        stepped.step()
    for block in (1, 7, 500, 992, 1500):  # straddles draw-block boundaries
        blocked.run(block)
    assert blocked.iterations == stepped.iterations == 3000
    assert blocked.occupied == stepped.occupied
    assert blocked.edge_count == stepped.edge_count
    assert blocked.rejection_counts == stepped.rejection_counts


@pytest.mark.slow
def test_long_run_with_grid_reallocation_matches_reference():
    """An unbiased blob drifts far enough to force several grid re-centers."""
    initial = line(30)
    reference, fast = engine_pair(initial, 1.0, seed=13)
    reference.run(150_000)
    fast.run(150_000)
    assert fast.occupied == reference.occupied
    assert fast.edge_count == reference.edge_count
    assert fast.accepted_moves == reference.accepted_moves
    assert fast.rejection_counts == reference.rejection_counts
    assert fast.perimeter() == reference.perimeter()


def test_callback_interface_matches_reference():
    seen_reference, seen_fast = [], []
    reference, fast = engine_pair(line(12), 4.0, seed=5)
    reference.run(200, callback=lambda i, r: seen_reference.append((i, r)))
    fast.run(200, callback=lambda i, r: seen_fast.append((i, r)))
    assert seen_fast == seen_reference


def test_constructor_error_parity():
    disconnected = ParticleConfiguration([(0, 0), (5, 5)])
    for engine in (CompressionMarkovChain, FastCompressionChain):
        with pytest.raises(ConfigurationError):
            engine(disconnected, lam=4.0)
        with pytest.raises(ConfigurationError):
            engine(line(5), lam=0.0)
        with pytest.raises(ConfigurationError):
            engine(line(5), lam=4.0).run(-1)


class TestMoveTables:
    def test_property_table_matches_reference_in_every_direction(self):
        """One table serves all six directions (rotation invariance)."""
        _, _, property_ok = move_tables()
        for direction, delta in enumerate(DIRECTIONS):
            ring = RING_OFFSETS[direction]
            for mask in range(256):
                occupied = {(0, 0)}
                occupied.update(ring[k] for k in range(8) if mask >> k & 1)
                assert property_ok[mask] == satisfies_either_property(
                    occupied, (0, 0), delta
                ), f"direction {direction}, mask {mask:#010b}"

    def test_neighbor_tables_count_ring_bits(self):
        neighbors_before, neighbors_after, _ = move_tables()
        ring = RING_OFFSETS[0]
        source, target = (0, 0), DIRECTIONS[0]
        for mask in range(256):
            occupied = {ring[k] for k in range(8) if mask >> k & 1}
            assert neighbors_before[mask] == sum(
                1 for node in neighbors(source) if node in occupied
            )
            assert neighbors_after[mask] == sum(
                1 for node in neighbors(target) if node in occupied
            )


class TestOccupancyGrid:
    def test_roundtrip_and_membership(self):
        nodes = sorted(spiral(19).nodes)
        grid = OccupancyGrid(nodes)
        for node in nodes:
            assert grid.node_at(grid.flat_index(node)) == node
            assert grid.is_occupied(node)
        assert not grid.is_occupied((100, 100))  # outside the window
        assert sorted(grid.occupied_nodes()) == nodes
        assert grid.occupied_count() == 19

    def test_array_view_shares_memory(self):
        grid = OccupancyGrid([(0, 0)])
        assert grid.array.sum() == 1
        grid.add((1, 0))
        assert grid.array.sum() == 2
        grid.remove((0, 0))
        assert grid.array.sum() == 1

    def test_add_far_outside_window_recenters(self):
        grid = OccupancyGrid([(0, 0)])
        grid.add((500, -300))
        assert grid.is_occupied((0, 0))
        assert grid.is_occupied((500, -300))
        assert grid.occupied_count() == 2

    def test_recenter_preserves_occupancy(self):
        nodes = sorted(random_connected(25, seed=2).nodes)
        grid = OccupancyGrid(nodes)
        grid.recenter()
        assert sorted(grid.occupied_nodes()) == nodes
