"""Differential-testing harness: the optimized engines against the reference.

The contract under test is the one documented in :mod:`repro.core`:
seeded identically (same seed, same draw block), the grid-based
:class:`~repro.core.fast_chain.FastCompressionChain`, the
block-vectorized :class:`~repro.core.vector_chain.VectorCompressionChain`
and the hash-map :class:`~repro.core.markov_chain.CompressionMarkovChain`
must produce bit-identical trajectories — the same proposal every
iteration, resolved the same way (identical move, rejection reason and
edge delta), with identical running edge counts, perimeters and rejection
tallies.  For the vector engine the batched ``run()`` path (the numpy
passes with the conflict cut) is additionally tested against the scalar
engines' ``run()`` across every case, since its ``step()`` is the scalar
fallback.

Lockstep runs cover the paper's standard line start, maximally compressed
spirals, and random connected starts (with and without holes), across
compressing (``lambda > 3.42``), neutral (``lambda = 1``) and expanding
(``lambda < 2.17``) regimes.
"""

import pytest

from repro.core.fast_chain import (
    RING_OFFSETS,
    FastCompressionChain,
    OccupancyGrid,
    move_tables,
    move_tables_array,
)
from repro.core.markov_chain import CompressionMarkovChain
from repro.core.properties import satisfies_either_property
from repro.core.sharded_chain import ShardedCompressionChain
from repro.core.vector_chain import VectorCompressionChain
from repro.errors import ConfigurationError
from repro.lattice.configuration import ParticleConfiguration
from repro.lattice.shapes import line, random_connected, ring, spiral
from repro.lattice.triangular import DIRECTIONS, neighbors

#: name -> (start configuration, lambda, lockstep iterations)
LOCKSTEP_CASES = {
    "line20_compressing": (line(20), 4.0, 2500),
    "line35_strong_bias": (line(35), 6.0, 2500),
    "spiral25_compressing": (spiral(25), 4.0, 2000),
    "spiral40_expanding": (spiral(40), 1.5, 2000),
    "random24_with_holes": (random_connected(24, seed=11), 4.0, 2000),
    "random30_compact": (random_connected(30, seed=23, compactness=0.6), 2.0, 2000),
    "ring2_hole_elimination": (ring(2), 4.0, 2000),
    "unbiased_random_walk": (line(15), 1.0, 2000),
}

#: The engines measured against the reference implementation.
CANDIDATE_ENGINES = {
    "fast": FastCompressionChain,
    "vector": VectorCompressionChain,
    "sharded": ShardedCompressionChain,
}


def engine_pair(initial, lam, seed, candidate="fast"):
    """A (reference, candidate) pair seeded identically."""
    return (
        CompressionMarkovChain(initial, lam=lam, seed=seed),
        CANDIDATE_ENGINES[candidate](initial, lam=lam, seed=seed),
    )


def assert_same_final_state(candidate, reference, context=""):
    assert candidate.occupied == reference.occupied, context
    assert candidate.edge_count == reference.edge_count, context
    assert candidate.accepted_moves == reference.accepted_moves, context
    assert candidate.rejection_counts == reference.rejection_counts, context
    assert candidate.perimeter() == reference.perimeter(), context
    assert candidate.hole_count() == reference.hole_count(), context


@pytest.mark.slow
@pytest.mark.parametrize("candidate", sorted(CANDIDATE_ENGINES))
@pytest.mark.parametrize("name", sorted(LOCKSTEP_CASES))
def test_lockstep_trajectories_are_identical(name, candidate):
    initial, lam, iterations = LOCKSTEP_CASES[name]
    reference, engine = engine_pair(initial, lam, seed=7, candidate=candidate)
    for iteration in range(iterations):
        expected = reference.step()
        actual = engine.step()
        assert actual == expected, (
            f"{name}: trajectories diverged at iteration {iteration}: "
            f"reference={expected}, {candidate}={actual}"
        )
        assert engine.edge_count == reference.edge_count, f"{name}@{iteration}"
        if iteration % 250 == 0:
            assert engine.perimeter() == reference.perimeter(), f"{name}@{iteration}"
    assert_same_final_state(engine, reference)
    assert engine.configuration == reference.configuration


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(LOCKSTEP_CASES))
def test_vector_run_matches_fast_run(name):
    """The vector engine's batched numpy path must equal scalar run()."""
    initial, lam, iterations = LOCKSTEP_CASES[name]
    fast = FastCompressionChain(initial, lam=lam, seed=19)
    vector = VectorCompressionChain(initial, lam=lam, seed=19)
    # Uneven chunks straddle draw blocks, pass boundaries and refills.
    for chunk in (1, 37, 700, 1024, 2500, iterations):
        fast.run(chunk)
        vector.run(chunk)
        assert vector.edge_count == fast.edge_count, f"{name} after chunk {chunk}"
    assert_same_final_state(vector, fast, name)


@pytest.mark.slow
@pytest.mark.parametrize("candidate", sorted(CANDIDATE_ENGINES))
def test_block_runs_match_lockstep_runs(candidate):
    """run(k) must consume the tape exactly like k step() calls."""
    initial = line(40)
    engine = CANDIDATE_ENGINES[candidate]
    stepped = engine(initial, lam=4.0, seed=3)
    blocked = engine(initial, lam=4.0, seed=3)
    for _ in range(3000):
        stepped.step()
    for block in (1, 7, 500, 992, 1500):  # straddles draw-block boundaries
        blocked.run(block)
    assert blocked.iterations == stepped.iterations == 3000
    assert blocked.occupied == stepped.occupied
    assert blocked.edge_count == stepped.edge_count
    assert blocked.rejection_counts == stepped.rejection_counts


@pytest.mark.slow
@pytest.mark.parametrize("candidate", sorted(CANDIDATE_ENGINES))
def test_long_run_with_grid_reallocation_matches_reference(candidate):
    """An unbiased blob drifts far enough to force several grid re-centers."""
    initial = line(30)
    reference, engine = engine_pair(initial, 1.0, seed=13, candidate=candidate)
    reference.run(150_000)
    engine.run(150_000)
    assert_same_final_state(engine, reference)


@pytest.mark.parametrize("candidate", sorted(CANDIDATE_ENGINES))
def test_callback_interface_matches_reference(candidate):
    seen_reference, seen_candidate = [], []
    reference, engine = engine_pair(line(12), 4.0, seed=5, candidate=candidate)
    reference.run(200, callback=lambda i, r: seen_reference.append((i, r)))
    engine.run(200, callback=lambda i, r: seen_candidate.append((i, r)))
    assert seen_candidate == seen_reference


def test_mixed_step_and_run_keeps_vector_engine_aligned():
    """Interleaving scalar step() with vectorized run() shares one tape."""
    fast = FastCompressionChain(line(25), lam=4.0, seed=2)
    vector = VectorCompressionChain(line(25), lam=4.0, seed=2)
    for _ in range(40):
        fast.step()
        vector.step()
    for chunk in (900, 200, 2048):
        fast.run(chunk)
        vector.run(chunk)
    for _ in range(40):
        assert vector.step() == fast.step()
    assert_same_final_state(vector, fast)


def test_constructor_error_parity():
    disconnected = ParticleConfiguration([(0, 0), (5, 5)])
    for engine in (
        CompressionMarkovChain,
        FastCompressionChain,
        VectorCompressionChain,
        ShardedCompressionChain,
    ):
        with pytest.raises(ConfigurationError):
            engine(disconnected, lam=4.0)
        with pytest.raises(ConfigurationError):
            engine(line(5), lam=0.0)
        with pytest.raises(ConfigurationError):
            engine(line(5), lam=4.0).run(-1)


class TestMoveTables:
    def test_property_table_matches_reference_in_every_direction(self):
        """One table serves all six directions (rotation invariance)."""
        _, _, property_ok = move_tables()
        for direction, delta in enumerate(DIRECTIONS):
            ring = RING_OFFSETS[direction]
            for mask in range(256):
                occupied = {(0, 0)}
                occupied.update(ring[k] for k in range(8) if mask >> k & 1)
                assert property_ok[mask] == satisfies_either_property(
                    occupied, (0, 0), delta
                ), f"direction {direction}, mask {mask:#010b}"

    def test_neighbor_tables_count_ring_bits(self):
        neighbors_before, neighbors_after, _ = move_tables()
        ring = RING_OFFSETS[0]
        source, target = (0, 0), DIRECTIONS[0]
        for mask in range(256):
            occupied = {ring[k] for k in range(8) if mask >> k & 1}
            assert neighbors_before[mask] == sum(
                1 for node in neighbors(source) if node in occupied
            )
            assert neighbors_after[mask] == sum(
                1 for node in neighbors(target) if node in occupied
            )

    def test_array_form_matches_list_form(self):
        """move_tables_array() is the same data as move_tables(), column-wise."""
        neighbors_before, neighbors_after, property_ok = move_tables()
        array = move_tables_array()
        assert array.shape == (256, 3)
        assert not array.flags.writeable
        assert array[:, 0].tolist() == neighbors_before
        assert array[:, 1].tolist() == neighbors_after
        assert array[:, 2].tolist() == [int(ok) for ok in property_ok]

    def test_array_form_is_memoized(self):
        assert move_tables_array() is move_tables_array()


class TestOccupancyGrid:
    def test_roundtrip_and_membership(self):
        nodes = sorted(spiral(19).nodes)
        grid = OccupancyGrid(nodes)
        for node in nodes:
            assert grid.node_at(grid.flat_index(node)) == node
            assert grid.is_occupied(node)
        assert not grid.is_occupied((100, 100))  # outside the window
        assert sorted(grid.occupied_nodes()) == nodes
        assert grid.occupied_count() == 19

    def test_array_view_shares_memory(self):
        grid = OccupancyGrid([(0, 0)])
        assert grid.array.sum() == 1
        grid.add((1, 0))
        assert grid.array.sum() == 2
        grid.remove((0, 0))
        assert grid.array.sum() == 1

    def test_add_far_outside_window_recenters(self):
        grid = OccupancyGrid([(0, 0)])
        grid.add((500, -300))
        assert grid.is_occupied((0, 0))
        assert grid.is_occupied((500, -300))
        assert grid.occupied_count() == 2

    def test_recenter_preserves_occupancy(self):
        nodes = sorted(random_connected(25, seed=2).nodes)
        grid = OccupancyGrid(nodes)
        grid.recenter()
        assert sorted(grid.occupied_nodes()) == nodes

    def test_recenter_reuses_buffers_when_dims_unchanged(self):
        """A pure drift (same bounding box size) must not reallocate: the
        fast path repaints the existing planes in place."""
        nodes = sorted(line(20).nodes)
        grid = OccupancyGrid(nodes)
        cells_before, array_before = grid.cells, grid.array
        # Translate the window by recentering around shifted extra nodes:
        # same bbox dims, different origin.
        shifted = [(x + 7, y - 3) for x, y in nodes]
        for node in nodes:
            grid.remove(node)
        for node in shifted:
            grid.add(node)
        grid.recenter()
        assert grid.cells is cells_before
        assert grid.array is array_before
        assert sorted(grid.occupied_nodes()) == sorted(shifted)

    def test_recenter_reallocates_when_dims_change(self):
        nodes = sorted(line(10).nodes)
        grid = OccupancyGrid(nodes)
        array_before = grid.array
        grid.add((0, 30))  # grows the bounding box: fast path must not fire
        grid.recenter()
        assert grid.array is not array_before
        assert sorted(grid.occupied_nodes()) == sorted(nodes + [(0, 30)])

    def test_recenter_includes_extra_nodes_in_bbox(self):
        """extra nodes widen the recenter bbox even when unoccupied."""
        grid = OccupancyGrid([(0, 0), (4, 0)])
        grid.recenter(extra=[(2, 10)])
        assert grid.is_occupied((0, 0)) and grid.is_occupied((4, 0))
        assert not grid.is_occupied((2, 10))
        # The extra node must now sit inside the window (no recenter needed
        # to add it).
        flat = grid.flat_index((2, 10))
        assert 0 <= flat < grid.width * grid.height

    def test_guard_band_membership_is_the_border(self):
        """in_guard_band (divmod arithmetic) marks exactly the border cells."""
        from repro.core.fast_chain import GUARD_BAND

        grid = OccupancyGrid([(0, 0), (3, 2)])
        for y in range(grid.height):
            for x in range(grid.width):
                expected = (
                    x < GUARD_BAND
                    or x >= grid.width - GUARD_BAND
                    or y < GUARD_BAND
                    or y >= grid.height - GUARD_BAND
                )
                assert grid.in_guard_band(y * grid.width + x) == expected, (x, y)
