"""Exact stationary-distribution tests for small systems (Lemmas 3.9-3.13)."""

import numpy as np
import pytest

from repro.analysis.mixing import empirical_distribution, total_variation_distance
from repro.core.stationary import (
    MAX_EXACT_PARTICLES,
    build_state_space,
    exact_stationary_distribution,
    stationary_distribution_from_matrix,
    transition_matrix,
    verify_aperiodicity,
    verify_detailed_balance,
    verify_irreducibility,
    verify_transience_of_holes,
)
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def space4():
    return build_state_space(4)


@pytest.fixture(scope="module")
def matrix4(space4):
    return transition_matrix(space4, lam=3.0)


class TestStateSpace:
    def test_counts(self, space4):
        assert space4.size == 44
        assert space4.hole_free.all()
        assert len(space4.hole_free_indices) == 44

    def test_six_particle_space_contains_one_holey_state(self):
        space = build_state_space(6)
        assert space.size == 814
        assert int(space.hole_free.sum()) == 813

    def test_hole_free_only_space(self):
        space = build_state_space(6, include_holes=False)
        assert space.size == 813

    def test_size_limit(self):
        with pytest.raises(AnalysisError):
            build_state_space(MAX_EXACT_PARTICLES + 1)
        with pytest.raises(AnalysisError):
            build_state_space(0)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self, matrix4):
        assert np.allclose(matrix4.sum(axis=1), 1.0)
        assert (matrix4 >= 0).all()

    def test_self_loops_present(self, space4, matrix4):
        assert verify_aperiodicity(space4, matrix4)

    def test_irreducible_on_hole_free_states(self, space4, matrix4):
        assert verify_irreducibility(space4, matrix4)

    def test_lambda_must_be_positive(self, space4):
        with pytest.raises(AnalysisError):
            transition_matrix(space4, lam=0.0)


class TestStationaryDistribution:
    def test_algebraic_form_matches_matrix_solution(self, space4, matrix4):
        """pi(sigma) ∝ lambda^{e(sigma)} solves pi M = pi (Lemma 3.13)."""
        exact = exact_stationary_distribution(space4, lam=3.0)
        solved = stationary_distribution_from_matrix(matrix4)
        assert np.allclose(exact, solved, atol=1e-8)
        assert exact.sum() == pytest.approx(1.0)

    def test_detailed_balance(self, space4, matrix4):
        exact = exact_stationary_distribution(space4, lam=3.0)
        assert verify_detailed_balance(space4, matrix4, exact)

    def test_stationarity_under_one_step(self, space4, matrix4):
        exact = exact_stationary_distribution(space4, lam=3.0)
        assert np.allclose(exact @ matrix4, exact, atol=1e-12)

    def test_holey_states_have_zero_stationary_mass(self):
        """Lemma 3.12: any stationary distribution vanishes on Omega \\ Omega*."""
        space = build_state_space(6)
        matrix = transition_matrix(space, lam=2.5)
        exact = exact_stationary_distribution(space, lam=2.5)
        solved = stationary_distribution_from_matrix(matrix)
        holey = ~space.hole_free
        assert np.all(exact[holey] == 0.0)
        assert np.allclose(solved[holey], 0.0, atol=1e-8)
        assert np.allclose(exact, solved, atol=1e-7)
        assert verify_transience_of_holes(space, matrix)

    def test_uniform_distribution_when_lambda_is_one(self, space4):
        exact = exact_stationary_distribution(space4, lam=1.0)
        assert np.allclose(exact, 1.0 / space4.size)

    def test_larger_lambda_concentrates_on_compressed_states(self, space4):
        weak = exact_stationary_distribution(space4, lam=1.5)
        strong = exact_stationary_distribution(space4, lam=6.0)
        perimeters = np.array([state.perimeter for state in space4.states], dtype=float)
        assert perimeters @ strong < perimeters @ weak

    def test_distribution_requires_hole_free_states(self):
        space = build_state_space(3)
        with pytest.raises(AnalysisError):
            exact_stationary_distribution(space, lam=0.0)


class TestEmpiricalAgreement:
    def test_simulated_chain_visits_states_per_the_stationary_distribution(self):
        """Simulation-level confirmation of Lemma 3.13 for n = 3."""
        space = build_state_space(3)
        exact = exact_stationary_distribution(space, lam=3.0)
        empirical = empirical_distribution(
            space, lam=3.0, iterations=120_000, burn_in=5_000, sample_every=5, seed=0
        )
        assert total_variation_distance(exact, empirical) < 0.05
