"""Tests for the high-level CompressionSimulation API."""

import pytest

from repro.core.compression import CompressionSimulation, CompressionTrace, TracePoint
from repro.errors import ConfigurationError
from repro.lattice.geometry import max_perimeter, min_perimeter
from repro.lattice.shapes import line, spiral


class TestSetupAndMetrics:
    def test_from_line_matches_shape_generator(self):
        simulation = CompressionSimulation.from_line(12, lam=4.0, seed=0)
        assert simulation.configuration == line(12)
        assert simulation.min_possible_perimeter == min_perimeter(12)
        assert simulation.max_possible_perimeter == max_perimeter(12)

    def test_initial_trace_point_recorded(self):
        simulation = CompressionSimulation.from_line(10, lam=4.0, seed=0)
        assert len(simulation.trace.points) == 1
        first = simulation.trace.points[0]
        assert first.iteration == 0
        assert first.perimeter == 18
        assert first.holes == 0

    def test_ratios_for_perfectly_compressed_start(self):
        simulation = CompressionSimulation(spiral(19), lam=4.0, seed=0)
        assert simulation.compression_ratio() == pytest.approx(1.0)
        assert simulation.is_alpha_compressed(1.001)
        assert not simulation.is_beta_expanded(0.9)

    def test_ratios_for_line_start(self):
        simulation = CompressionSimulation.from_line(20, lam=4.0, seed=0)
        assert simulation.expansion_ratio() == pytest.approx(1.0)
        assert simulation.is_beta_expanded(0.99)
        assert not simulation.is_alpha_compressed(1.5)

    def test_metric_validation(self):
        simulation = CompressionSimulation.from_line(10, lam=4.0, seed=0)
        with pytest.raises(ConfigurationError):
            simulation.is_alpha_compressed(0.9)
        with pytest.raises(ConfigurationError):
            simulation.is_beta_expanded(1.5)


class TestRunning:
    def test_run_records_trace(self):
        simulation = CompressionSimulation.from_line(15, lam=4.0, seed=1)
        trace = simulation.run(5000, record_every=1000)
        assert isinstance(trace, CompressionTrace)
        assert trace is simulation.trace
        assert len(trace.points) == 6  # initial + 5 blocks
        assert trace.iterations() == [0, 1000, 2000, 3000, 4000, 5000]
        assert all(isinstance(point, TracePoint) for point in trace.points)

    def test_trace_series_accessors(self):
        simulation = CompressionSimulation.from_line(15, lam=4.0, seed=2)
        simulation.run(3000, record_every=1500)
        assert len(simulation.trace.perimeters()) == len(simulation.trace.alphas())
        assert simulation.trace.final().iteration == 3000

    def test_empty_trace_final_raises(self):
        trace = CompressionTrace(n=5, lam=4.0)
        with pytest.raises(ConfigurationError):
            trace.final()

    def test_perimeter_decreases_under_strong_bias(self):
        simulation = CompressionSimulation.from_line(30, lam=5.0, seed=3)
        start = simulation.chain.perimeter()
        simulation.run(80_000, record_every=20_000)
        assert simulation.chain.perimeter() < 0.7 * start

    def test_run_until_compressed_reaches_target(self):
        simulation = CompressionSimulation.from_line(15, lam=6.0, seed=4)
        iterations = simulation.run_until_compressed(alpha=2.5, max_iterations=300_000)
        assert iterations is not None
        assert simulation.is_alpha_compressed(2.5)

    def test_run_until_compressed_budget_exhaustion(self):
        simulation = CompressionSimulation.from_line(40, lam=4.0, seed=5)
        assert simulation.run_until_compressed(alpha=1.05, max_iterations=2000) is None

    def test_run_until_compressed_immediate_return(self):
        simulation = CompressionSimulation(spiral(19), lam=4.0, seed=6)
        assert simulation.run_until_compressed(alpha=1.5, max_iterations=100) == 0

    def test_run_parameter_validation(self):
        simulation = CompressionSimulation.from_line(10, lam=4.0, seed=0)
        with pytest.raises(ConfigurationError):
            simulation.run(-1)
        with pytest.raises(ConfigurationError):
            simulation.run(10, record_every=0)
        with pytest.raises(ConfigurationError):
            simulation.run_until_compressed(alpha=0.5, max_iterations=10)
