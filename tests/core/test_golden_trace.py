"""Golden-trace regression test for the chain engines.

``tests/core/golden/line20_lam4_seed0.json`` pins the first 200
:class:`~repro.core.markov_chain.StepResult` values (and the resulting
final state) of Algorithm M from the paper's standard ``line(20)`` start
at ``lambda = 4`` with seed 0 under the batched-draw protocol.  Both
engines must reproduce the committed trajectory bit-for-bit, so any
future optimization that silently changes chain behaviour — a reordered
draw, a perturbed acceptance probability, an off-by-one in the move
tables — fails here rather than skewing experiment results unnoticed.

If a change *intentionally* alters the protocol (and the ROADMAP agrees),
regenerate the fixture with both engines in agreement and say so loudly
in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.core.fast_chain import FastCompressionChain
from repro.core.markov_chain import CompressionMarkovChain
from repro.core.sharded_chain import ShardedCompressionChain
from repro.core.vector_chain import VectorCompressionChain
from repro.lattice.shapes import line

FIXTURE_PATH = Path(__file__).parent / "golden" / "line20_lam4_seed0.json"

ENGINES_UNDER_TEST = {
    "reference": CompressionMarkovChain,
    "fast": FastCompressionChain,
    "vector": VectorCompressionChain,
    "sharded": ShardedCompressionChain,
}


@pytest.fixture(scope="module")
def golden():
    with FIXTURE_PATH.open() as fh:
        return json.load(fh)


@pytest.mark.parametrize("engine_name", sorted(ENGINES_UNDER_TEST))
def test_engine_reproduces_golden_trace(golden, engine_name):
    engine = ENGINES_UNDER_TEST[engine_name]
    chain = engine(
        line(golden["n"]),
        lam=golden["lam"],
        seed=golden["seed"],
        draw_block=golden["draw_block"],
    )
    for iteration, expected in enumerate(golden["trajectory"]):
        source_x, source_y, target_x, target_y, edge_delta, reason = expected
        result = chain.step()
        actual = [
            result.move.source[0],
            result.move.source[1],
            result.move.target[0],
            result.move.target[1],
            result.edge_delta,
            result.reason,
        ]
        assert actual == [source_x, source_y, target_x, target_y, edge_delta, reason], (
            f"{engine_name} engine diverged from the golden trace at iteration "
            f"{iteration}: got {actual}, expected {expected}"
        )
    final = golden["final"]
    assert chain.edge_count == final["edge_count"]
    assert chain.perimeter() == final["perimeter"]
    assert chain.accepted_moves == final["accepted_moves"]
    assert chain.rejection_counts == final["rejection_counts"]
    assert sorted(chain.occupied) == [tuple(node) for node in final["occupied"]]


@pytest.mark.parametrize("engine_name", sorted(ENGINES_UNDER_TEST))
def test_engine_run_reproduces_golden_final_state(golden, engine_name):
    """The batched run() paths (including the vector engine's numpy passes)
    land on the committed final state, not just per-step step()."""
    chain = ENGINES_UNDER_TEST[engine_name](
        line(golden["n"]),
        lam=golden["lam"],
        seed=golden["seed"],
        draw_block=golden["draw_block"],
    )
    chain.run(golden["steps"])
    final = golden["final"]
    assert chain.edge_count == final["edge_count"]
    assert chain.perimeter() == final["perimeter"]
    assert chain.accepted_moves == final["accepted_moves"]
    assert chain.rejection_counts == final["rejection_counts"]
    assert sorted(chain.occupied) == [tuple(node) for node in final["occupied"]]


def test_golden_fixture_is_self_consistent(golden):
    assert golden["steps"] == len(golden["trajectory"]) == 200
    moved = sum(1 for entry in golden["trajectory"] if entry[5] == "moved")
    assert moved == golden["final"]["accepted_moves"]
    reasons = {entry[5] for entry in golden["trajectory"]}
    assert reasons <= {
        "moved",
        "target_occupied",
        "five_neighbors",
        "property_failed",
        "metropolis_rejected",
    }
