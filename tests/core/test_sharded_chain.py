"""The sharded engine: tiling geometry, partition invariance, bit-identity.

Three layers of coverage for :mod:`repro.core.sharded_chain` and
:mod:`repro.lattice.tiling`:

* **Geometry:** :class:`~repro.lattice.tiling.TiledGrid` unit tests,
  including the *halo-reach property* the whole design rests on — every
  cell a proposal's evaluation reads (the two 8-cell rings of the move
  tables) lies within Chebyshev distance :data:`~repro.lattice.tiling.MIN_HALO`
  of the source, hence inside the owning tile's halo window.
* **Partition invariance:** with the shard threshold forced down so the
  tiled path handles every pass, the trajectory must be bit-identical to
  the fast engine across tile layouts, halo widths and worker counts —
  the engine's core promise.
* **Plumbing:** ``engine="sharded"`` + ``engine_options`` through
  :class:`~repro.core.compression.CompressionSimulation` and the runtime
  job records, including the rejection paths for malformed options.

The small-n lockstep and golden-trace coverage lives in the shared
harnesses (``test_fast_chain_equivalence.py``, ``test_golden_trace.py``,
and the algorithm engine files), which parametrize over all four engines.
"""

import numpy as np
import pytest

import repro.core.sharded_chain as sharded_chain
from repro.core.compression import CompressionSimulation
from repro.core.fast_chain import GUARD_BAND, RING_OFFSETS, FastCompressionChain
from repro.core.sharded_chain import ShardedCompressionChain, _auto_tile_counts
from repro.errors import ConfigurationError
from repro.lattice.shapes import line, random_connected, spiral
from repro.lattice.tiling import MIN_HALO, TiledGrid
from repro.lattice.triangular import DIRECTIONS


@pytest.fixture
def tiny_shard_threshold(monkeypatch):
    """Force the tiled path on for every pass, whatever its size."""
    monkeypatch.setattr(sharded_chain, "_MIN_SHARD_PASS", 1)


class TestTiledGrid:
    def test_bounds_tile_the_window_exactly(self):
        tiling = TiledGrid(100, 70, 4, 3)
        seen = np.zeros((70, 100), dtype=int)
        for tile in range(tiling.tile_count):
            x0, y0, x1, y1 = tiling.tile_bounds(tile)
            assert x0 < x1 and y0 < y1
            seen[y0:y1, x0:x1] += 1
        # A partition: every cell in exactly one tile.
        assert (seen == 1).all()

    def test_owner_matches_tile_bounds(self):
        tiling = TiledGrid(37, 23, 3, 4)  # truncated last row and column
        for y in range(23):
            for x in range(37):
                tile = int(tiling.owner_of(np.array([y * 37 + x]))[0])
                x0, y0, x1, y1 = tiling.tile_bounds(tile)
                assert x0 <= x < x1 and y0 <= y < y1, (x, y, tile)

    def test_scalar_and_vector_owner_agree(self):
        tiling = TiledGrid(64, 64, 4, 2)
        flats = np.arange(64 * 64)
        owners = tiling.owner_of(flats)
        assert [tiling.owner_of_flat(int(f)) for f in flats[::97]] == [
            int(o) for o in owners[::97]
        ]

    def test_halo_bounds_grow_by_halo_and_clip_to_window(self):
        tiling = TiledGrid(100, 100, 2, 2, halo=3)
        x0, y0, x1, y1 = tiling.tile_bounds(0)
        hx0, hy0, hx1, hy1 = tiling.halo_bounds(0)
        assert (hx0, hy0) == (0, 0)  # clipped at the window edge
        assert (hx1, hy1) == (x1 + 3, y1 + 3)

    def test_views_share_memory(self):
        tiling = TiledGrid(40, 40, 2, 2)
        plane = np.zeros((40, 40), dtype=np.int8)
        view = tiling.tile_view(plane, 3)
        view[:] = 7
        x0, y0, x1, y1 = tiling.tile_bounds(3)
        assert (plane[y0:y1, x0:x1] == 7).all()
        assert plane.sum() == 7 * (x1 - x0) * (y1 - y0)
        halo_view = tiling.halo_view(plane, 0)
        assert halo_view.base is plane

    def test_halo_touching_flags_border_band(self):
        tiling = TiledGrid(20, 20, 2, 2, halo=2)
        flats = np.arange(400)
        touching = tiling.halo_touching(flats)
        for flat in range(400):
            y, x = divmod(flat, 20)
            tile = tiling.owner_of_flat(flat)
            x0, y0, x1, y1 = tiling.tile_bounds(tile)
            expected = (
                x - x0 < 2 or x1 - x < 3 or y - y0 < 2 or y1 - y < 3
            )
            assert bool(touching[flat]) == expected, (x, y)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TiledGrid(10, 10, 0, 2)
        with pytest.raises(ConfigurationError):
            TiledGrid(10, 10, 11, 1)  # more tiles than columns
        with pytest.raises(ConfigurationError):
            TiledGrid(10, 10, 2, 2, halo=MIN_HALO - 1)
        with pytest.raises(ConfigurationError):
            TiledGrid(0, 10, 1, 1)

    def test_halo_reach_property(self):
        """Every cell a proposal's evaluation reads lies inside the owning
        tile's halo window.

        The move tables read the 8-cell rings around the source and the
        target; the target is one step from the source, so all reads sit
        within Chebyshev distance MIN_HALO of the source.  Sources are
        never in the guard band, so the halo window (clipped to the
        window) covers every read.
        """
        read_offsets = set()
        for direction, (dx, dy) in enumerate(DIRECTIONS):
            for rx, ry in RING_OFFSETS[direction]:
                read_offsets.add((rx, ry))  # source ring (direction-tagged)
            read_offsets.add((dx, dy))
        reach = max(max(abs(dx), abs(dy)) for dx, dy in read_offsets)
        assert reach <= MIN_HALO, "move tables read beyond the declared halo"

        tiling = TiledGrid(33, 29, 3, 2, halo=MIN_HALO)
        for y in range(GUARD_BAND, 29 - GUARD_BAND):
            for x in range(GUARD_BAND, 33 - GUARD_BAND):
                tile = tiling.owner_of_flat(y * 33 + x)
                hx0, hy0, hx1, hy1 = tiling.halo_bounds(tile)
                for dx, dy in read_offsets:
                    assert hx0 <= x + dx < hx1 and hy0 <= y + dy < hy1, (
                        f"read at ({x + dx}, {y + dy}) escapes the halo of "
                        f"tile {tile} for a source at ({x}, {y})"
                    )


class TestAutoTileCounts:
    def test_at_least_two_by_two_and_longer_axis_cut_more(self):
        tiles_x, tiles_y = _auto_tile_counts(300, 100, 4)
        assert tiles_x >= tiles_y and tiles_x * tiles_y == 4
        tiles_x, tiles_y = _auto_tile_counts(100, 300, 7)
        assert tiles_y >= tiles_x and tiles_x * tiles_y == 8  # rounded up

    def test_degenerate_windows_shrink_tile_counts(self):
        tiles_x, tiles_y = _auto_tile_counts(3, 500, 16)
        assert tiles_x == 1  # a 3-wide window cannot host 2-wide tiles


class TestPartitionInvariance:
    """The trajectory must not depend on tiles, halo or workers."""

    LAYOUTS = [
        {"tiles": (2, 2), "workers": 1},
        {"tiles": (2, 2), "workers": 2},
        {"tiles": (4, 1), "workers": 3},
        {"tiles": (3, 5), "workers": 2, "halo": 4},
        {"tiles": 8, "workers": 2},
        {"tiles": None, "workers": 2},
    ]

    @pytest.mark.parametrize("layout", LAYOUTS, ids=[str(l) for l in LAYOUTS])
    def test_trajectory_matches_fast_engine(self, layout, tiny_shard_threshold):
        initial = random_connected(60, seed=5)
        fast = FastCompressionChain(initial, lam=4.0, seed=11)
        engine = ShardedCompressionChain(initial, lam=4.0, seed=11, **layout)
        for chunk in (700, 1024, 3000):
            fast.run(chunk)
            engine.run(chunk)
            assert engine.edge_count == fast.edge_count, layout
        assert engine.occupied == fast.occupied
        assert engine.rejection_counts == fast.rejection_counts
        assert engine.accepted_moves == fast.accepted_moves

    def test_layouts_agree_with_each_other(self, tiny_shard_threshold):
        initial = spiral(50)
        runs = []
        for layout in self.LAYOUTS[:3]:
            engine = ShardedCompressionChain(initial, lam=5.0, seed=3, **layout)
            engine.run(4000)
            runs.append((engine.occupied, engine.rejection_counts))
        assert runs[0] == runs[1] == runs[2]

    def test_rebinds_tiling_after_grid_recenter(self, tiny_shard_threshold):
        """Unbiased drift forces re-centers; the tiling must follow the
        window and the trajectory must stay pinned to the fast engine."""
        initial = line(30)
        fast = FastCompressionChain(initial, lam=1.0, seed=13)
        engine = ShardedCompressionChain(initial, lam=1.0, seed=13, tiles=(2, 2), workers=2)
        fast.run(60_000)
        engine.run(60_000)
        assert engine.occupied == fast.occupied
        assert engine.rejection_counts == fast.rejection_counts
        tiling = engine._tiling
        assert (tiling.width, tiling.height) == (engine.grid.width, engine.grid.height)

    def test_small_passes_fall_back_to_plain_vector_path(self):
        """Below the shard threshold the engine must not fan out (the
        per-tile numpy calls would cost more than they win)."""
        engine = ShardedCompressionChain(line(20), lam=4.0, seed=0, tiles=(2, 2))
        sources = np.arange(8)
        assert engine._tile_groups(sources) is None


class TestConstructionAndOptions:
    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedCompressionChain(line(10), lam=4.0, workers=0)
        with pytest.raises(ConfigurationError):
            ShardedCompressionChain(line(10), lam=4.0, halo=MIN_HALO - 1)
        with pytest.raises(ConfigurationError):
            ShardedCompressionChain(line(10), lam=4.0, tiles=0)
        with pytest.raises(ConfigurationError):
            ShardedCompressionChain(line(10), lam=4.0, tiles="lots")

    def test_tiles_accepts_list_from_json_roundtripped_options(self):
        engine = ShardedCompressionChain(line(10), lam=4.0, seed=0, tiles=[2, 2])
        assert engine._tiling.tiles_x == 2 and engine._tiling.tiles_y == 2

    def test_simulation_threads_engine_options(self):
        simulation = CompressionSimulation(
            line(30),
            lam=4.0,
            seed=1,
            engine="sharded",
            engine_options={"tiles": (2, 2), "workers": 1},
        )
        assert isinstance(simulation.chain, ShardedCompressionChain)
        baseline = CompressionSimulation(line(30), lam=4.0, seed=1, engine="fast")
        simulation.run(3000)
        baseline.run(3000)
        assert simulation.chain.occupied == baseline.chain.occupied

    def test_simulation_rejects_unknown_engine_options(self):
        with pytest.raises(ConfigurationError, match="rejected engine_options"):
            CompressionSimulation(
                line(10), lam=4.0, engine="sharded", engine_options={"nope": 1}
            )
        with pytest.raises(ConfigurationError, match="rejected engine_options"):
            CompressionSimulation(
                line(10), lam=4.0, engine="fast", engine_options={"workers": 2}
            )

    def test_job_roundtrip_and_validation(self):
        from repro.runtime.checkpoint import job_from_json, job_to_json
        from repro.runtime.jobs import ChainJob

        job = ChainJob(
            job_id="sharded-roundtrip",
            n=20,
            lam=4.0,
            iterations=500,
            seed=0,
            engine="sharded",
            engine_options={"tiles": [2, 2], "workers": 1},
        )
        assert job_from_json(job_to_json(job)) == job
        with pytest.raises(ConfigurationError):
            ChainJob(
                job_id="bad-options-type", n=20, lam=4.0, seed=0, iterations=1,
                engine_options=[("tiles", 2)],
            )
        with pytest.raises(ConfigurationError):
            ChainJob(
                job_id="bad-options-key", n=20, lam=4.0, seed=0, iterations=1,
                engine_options={1: "x"},
            )

    def test_job_run_matches_fast_engine(self):
        from repro.runtime.jobs import ChainJob, run_job

        sharded = run_job(
            ChainJob(
                job_id="sharded-job",
                n=24,
                lam=4.0,
                iterations=2000,
                seed=5,
                engine="sharded",
                engine_options={"tiles": [2, 2], "workers": 1},
            )
        )
        fast = run_job(
            ChainJob(job_id="fast-job", n=24, lam=4.0, iterations=2000, seed=5, engine="fast")
        )
        assert sharded.accepted_moves == fast.accepted_moves
        assert sharded.rejection_counts == fast.rejection_counts
        assert sharded.final_point().alpha == fast.final_point().alpha


@pytest.mark.slow
class TestShardedLockstepSmallInstance:
    """Tier-1-style shard equivalence at 2x2 tiles with the tiled path
    forced on: lockstep step() agreement plus batched-run agreement."""

    def test_lockstep_vs_fast(self, tiny_shard_threshold):
        initial = random_connected(40, seed=17)
        fast = FastCompressionChain(initial, lam=4.0, seed=23)
        engine = ShardedCompressionChain(
            initial, lam=4.0, seed=23, tiles=(2, 2), workers=2
        )
        for iteration in range(1500):
            assert engine.step() == fast.step(), f"diverged at {iteration}"
        for chunk in (911, 2048, 1500):
            fast.run(chunk)
            engine.run(chunk)
            assert engine.edge_count == fast.edge_count, chunk
        assert engine.occupied == fast.occupied
        assert engine.rejection_counts == fast.rejection_counts
