"""Measure how the time to compression scales with the number of particles (Section 3.7).

Run with::

    python examples/scaling_study.py [workers]

The paper reports that doubling the number of particles increases the
iterations until compression roughly ten-fold, suggesting Theta(n^3) to
O(n^4) scaling.  This script measures compression times for a few sizes on
the fast engine and fits the power-law exponent.  The independent
measurements are dispatched through the parallel ensemble runner
(:mod:`repro.runtime`); the hitting times are seed-determined, so the fit
is identical for any worker count.
"""

from __future__ import annotations

import sys

from repro.analysis.convergence import scaling_study
from repro.runtime import default_workers


def main(workers: int) -> None:
    sizes = [10, 15, 20, 30]
    print(
        f"Measuring iterations until 2-compression for n in {sizes} "
        f"(lambda = 5, fast engine, {workers} worker(s))"
    )
    result = scaling_study(
        sizes=sizes,
        lam=5.0,
        alpha=2.0,
        repetitions=2,
        budget_factor=200.0,
        seed=0,
        engine="fast",
        workers=workers,
    )
    print("\n   n    mean iterations to alpha=2 compression")
    for n, time in zip(result.sizes, result.times):
        label = f"{time:12.0f}" if time == time else "   (budget exhausted)"
        print(f"  {n:3d}   {label}")
    if result.exponent is not None:
        print(f"\nFitted power law: iterations ~ {result.prefactor:.2f} * n^{result.exponent:.2f}")
        print("Paper's conjecture: exponent between 3 and 4.")
    else:
        print("\nNot enough successful measurements to fit an exponent.")


if __name__ == "__main__":
    arguments = sys.argv[1:]
    workers = int(arguments[0]) if len(arguments) > 0 else default_workers(limit=4)
    main(workers)
