"""Sweep the bias parameter across both proven regimes (experiment E14).

Run with::

    python examples/lambda_sweep.py

Prints a table of final perimeter ratios for lambdas straddling the proven
expansion regime (lambda < 2.17), the conjectured phase-transition window,
and the proven compression regime (lambda > 2 + sqrt(2) ~ 3.41).
"""

from __future__ import annotations

from repro.analysis.experiments import run_lambda_sweep
from repro.constants import COMPRESSION_THRESHOLD, EXPANSION_THRESHOLD


def main() -> None:
    lambdas = (1.2, 1.7, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0)
    record = run_lambda_sweep(n=60, lambdas=lambdas, iterations=200_000, seed=0)
    print("lambda   regime                    final p   alpha    beta")
    print("-" * 62)
    for row in record.results["rows"]:
        lam = row["lambda"]
        if lam < EXPANSION_THRESHOLD:
            regime = "proven expansion"
        elif lam <= COMPRESSION_THRESHOLD:
            regime = "open (conjectured critical)"
        else:
            regime = "proven compression"
        print(
            f"{lam:5.2f}   {regime:<26}{row['final_perimeter']:7.0f}  "
            f"{row['alpha']:6.2f}  {row['beta']:6.2f}"
        )
    print(
        f"\nThresholds: expansion below {EXPANSION_THRESHOLD:.3f}, compression above "
        f"{COMPRESSION_THRESHOLD:.3f}; the paper conjectures a single critical lambda in between."
    )


if __name__ == "__main__":
    main()
