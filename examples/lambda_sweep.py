"""Sweep the bias parameter across both proven regimes (experiment E14).

Run with::

    python examples/lambda_sweep.py [workers] [replicas]

Prints a table of final perimeter ratios for lambdas straddling the proven
expansion regime (lambda < 2.17), the conjectured phase-transition window,
and the proven compression regime (lambda > 2 + sqrt(2) ~ 3.41).

The sweep is submitted through the parallel ensemble runner
(:mod:`repro.runtime`): every (lambda, replica) chain carries its own
spawned seed, so the numbers below are identical for any worker count —
parallelism changes wall-clock time only.  With ``replicas > 1`` the
cross-replica standard error is printed alongside each mean.
"""

from __future__ import annotations

import sys

from repro.analysis.experiments import run_lambda_sweep
from repro.constants import COMPRESSION_THRESHOLD, EXPANSION_THRESHOLD
from repro.runtime import ResultsTable, default_workers


def main(workers: int, replicas: int) -> None:
    lambdas = (1.2, 1.7, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0)
    print(
        f"Sweeping {len(lambdas)} lambdas x {replicas} replica(s) on {workers} worker(s), "
        f"fast engine"
    )
    record = run_lambda_sweep(
        n=60,
        lambdas=lambdas,
        iterations=200_000,
        seed=0,
        engine="fast",
        replicas=replicas,
        workers=workers,
    )
    table = ResultsTable(record.results["table"])
    spread = {
        summary["group"]: summary["std_error"]
        for summary in table.summary("final_alpha", by="lambda")
    }
    print("lambda   regime                    final p   alpha    beta")
    print("-" * 62)
    for row in record.results["rows"]:
        lam = row["lambda"]
        if lam < EXPANSION_THRESHOLD:
            regime = "proven expansion"
        elif lam <= COMPRESSION_THRESHOLD:
            regime = "open (conjectured critical)"
        else:
            regime = "proven compression"
        sem = spread.get(lam)
        sem_label = f"  (alpha sem {sem:.3f})" if sem is not None else ""
        print(
            f"{lam:5.2f}   {regime:<26}{row['final_perimeter']:7.0f}  "
            f"{row['alpha']:6.2f}  {row['beta']:6.2f}{sem_label}"
        )
    print(
        f"\nThresholds: expansion below {EXPANSION_THRESHOLD:.3f}, compression above "
        f"{COMPRESSION_THRESHOLD:.3f}; the paper conjectures a single critical lambda in between."
    )


if __name__ == "__main__":
    arguments = sys.argv[1:]
    workers = int(arguments[0]) if len(arguments) > 0 else default_workers(limit=4)
    replicas = int(arguments[1]) if len(arguments) > 1 else 1
    main(workers, replicas)
