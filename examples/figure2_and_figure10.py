"""Reproduce Figures 2 and 10: compression at lambda=4 versus non-compression at lambda=2.

Run with::

    python examples/figure2_and_figure10.py [--full]

The default workload uses 100 particles and 500k iterations per regime so
the script finishes in a few minutes; ``--full`` uses the paper's 5M/20M
iteration counts (slow).  SVG snapshots are written next to this script.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import CompressionSimulation, ExpansionSimulation
from repro.viz.ascii_art import render_trace_sparkline
from repro.viz.svg import save_svg

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def run_regime(label: str, lam: float, n: int, iterations: int, snapshots: int) -> None:
    print(f"\n=== {label}: n={n}, lambda={lam}, {iterations} iterations ===")
    if lam > 2.5:
        simulation = CompressionSimulation.from_line(n, lam=lam, seed=0)
    else:
        simulation = ExpansionSimulation.from_line(n, lam=lam, seed=0)
    block = iterations // snapshots
    OUTPUT_DIR.mkdir(exist_ok=True)
    for snapshot in range(1, snapshots + 1):
        simulation.run(block, record_every=max(1, block // 10))
        configuration = simulation.configuration
        path = OUTPUT_DIR / f"{label}_snapshot_{snapshot}.svg"
        save_svg(configuration, path)
        print(
            f"  after {simulation.chain.iterations:>9,d} iterations: "
            f"p = {configuration.perimeter:4d}  alpha = {simulation.compression_ratio():5.2f}  "
            f"beta = {simulation.expansion_ratio():4.2f}   -> {path.name}"
        )
    print(f"  perimeter trace: {render_trace_sparkline(simulation.trace.perimeters())}")


def main(full_scale: bool = False) -> None:
    n = 100
    iterations = 5_000_000 if full_scale else 500_000
    run_regime("figure2_lambda4", lam=4.0, n=n, iterations=iterations, snapshots=5)
    expansion_iterations = 20_000_000 if full_scale else 500_000
    run_regime("figure10_lambda2", lam=2.0, n=n, iterations=expansion_iterations, snapshots=4)
    print(
        "\nExpected shape (paper): the lambda=4 run collapses into a compact blob while "
        "the lambda=2 run stays spread out with perimeter a constant fraction of 2n-2."
    )


if __name__ == "__main__":
    main(full_scale="--full" in sys.argv)
