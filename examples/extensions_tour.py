"""A tour of the stochastic-approach extensions: separation, bridging, phototaxing.

Run with::

    python examples/extensions_tour.py

Section 6 of the paper argues the compression machinery generalizes to any
objective expressible as a locally computable energy function; the
follow-up works [2], [9] and [50] did exactly that.  This example runs a
small instance of each extension and prints its headline metric.

Separation and bridging now run as *weight kernels* on the shared engine
stack (see :mod:`repro.core.kernels`), so they get the same
``engine="reference" | "fast"`` selection as compression — the demos below
use the fast engines and print a measured reference-vs-fast runtime
comparison on identical seeded trajectories.
"""

from __future__ import annotations

import time

from repro.algorithms.phototaxing import PhototaxingSystem
from repro.algorithms.separation import ColoredConfiguration, SeparationMarkovChain
from repro.algorithms.shortcut_bridging import (
    BridgingMarkovChain,
    initial_bridge_configuration,
    v_shaped_terrain,
)
from repro.lattice.shapes import spiral
from repro.viz.ascii_art import render_ascii


def _timed(factory, iterations: int) -> float:
    """Seconds one engine takes to run ``iterations`` (construction excluded)."""
    chain = factory()
    started = time.perf_counter()
    chain.run(iterations)
    return time.perf_counter() - started


def separation_demo() -> None:
    print("=== Separation ([9]): gamma > 1 segregates the two colors ===")
    colored = ColoredConfiguration.random_colors(spiral(60), num_colors=2, seed=1)
    chain = SeparationMarkovChain(colored, lam=4.0, gamma=4.0, seed=2, engine="fast")
    print(f"  homogeneous edges before: {chain.state.homogeneous_edges()}")
    chain.run(60_000)
    state = chain.state
    print(f"  homogeneous edges after : {state.homogeneous_edges()}")
    glyphs = {node: ("A" if color == 0 else "B") for node, color in state.colors.items()}
    print(render_ascii(state.configuration, glyphs=glyphs))

    iterations = 200_000
    reference_seconds = _timed(
        lambda: SeparationMarkovChain(colored, lam=4.0, gamma=4.0, seed=2, engine="reference"),
        iterations,
    )
    fast_seconds = _timed(
        lambda: SeparationMarkovChain(colored, lam=4.0, gamma=4.0, seed=2, engine="fast"),
        iterations,
    )
    print(
        f"  {iterations} iterations: reference {reference_seconds:.2f}s, "
        f"fast {fast_seconds:.2f}s — {reference_seconds / fast_seconds:.1f}x "
        f"(same seed, bit-identical trajectory)"
    )


def bridging_demo() -> None:
    print("\n=== Shortcut bridging ([2]): gap aversion shortens the bridge ===")
    terrain = v_shaped_terrain(6)
    initial = initial_bridge_configuration(terrain, 40)
    for gamma in (1.0, 3.0, 6.0):
        chain = BridgingMarkovChain(
            initial, terrain, lam=4.0, gamma=gamma, seed=3, engine="fast"
        )
        chain.run(40_000)
        print(
            f"  gamma = {gamma:3.1f}: particles over the gap = {chain.gap_occupancy():3d}, "
            f"anchor path length = {chain.anchor_path_length()}"
        )

    iterations = 200_000
    reference_seconds = _timed(
        lambda: BridgingMarkovChain(
            initial, terrain, lam=4.0, gamma=3.0, seed=3, engine="reference"
        ),
        iterations,
    )
    fast_seconds = _timed(
        lambda: BridgingMarkovChain(
            initial, terrain, lam=4.0, gamma=3.0, seed=3, engine="fast"
        ),
        iterations,
    )
    print(
        f"  {iterations} iterations: reference {reference_seconds:.2f}s, "
        f"fast {fast_seconds:.2f}s — {reference_seconds / fast_seconds:.1f}x "
        f"(same seed, bit-identical trajectory)"
    )


def phototaxing_demo() -> None:
    print("\n=== Phototaxing ([50]): light-modulated activity drifts the swarm ===")
    control = PhototaxingSystem(spiral(40), lam=4.0, dazzle_factor=1.0, seed=4)
    lit = PhototaxingSystem(spiral(40), lam=4.0, dazzle_factor=0.2, seed=4)
    control.run(60_000, refresh_every=2_000)
    lit.run(60_000, refresh_every=2_000)
    print(f"  centroid displacement without light response: {control.drift():+.2f}")
    print(f"  centroid displacement with light response   : {lit.drift():+.2f}")


if __name__ == "__main__":
    separation_demo()
    bridging_demo()
    phototaxing_demo()
