"""Run the distributed Algorithm A, then crash a tenth of the particles mid-run.

Run with::

    python examples/distributed_and_faults.py

Demonstrates the amoebot-model execution of the compression rule
(Section 3.2) and its crash-fault tolerance (Section 3.3): crashed
particles become fixed points and the rest of the system keeps compressing
around them.
"""

from __future__ import annotations

from repro import create_system, line
from repro.amoebot.faults import CrashFaultInjector, FaultPlan
from repro.viz.ascii_art import render_ascii


def main() -> None:
    n = 50
    # engine="fast" is the table-driven array engine — bit-identical to
    # engine="reference" for equal seeds, ~30x+ the activation throughput.
    system = create_system(line(n), lam=4.0, seed=7, engine="fast")
    print(f"Running Algorithm A on {n} particles (lambda=4, Poisson clocks)")
    injector = CrashFaultInjector(fraction=0.1, after_activations=50_000, seed=11)
    plan = FaultPlan(injectors=[injector])

    checkpoints = 6
    per_block = 50_000
    for block in range(1, checkpoints + 1):
        plan.run(system, activations=per_block)
        configuration = system.configuration
        crashed = len(injector.crashed_ids)
        print(
            f"  {block * per_block:>7,d} activations "
            f"({system.scheduler.rounds_completed:5d} rounds): p = {configuration.perimeter:3d}, "
            f"alpha = {system.compression_ratio():4.2f}, moves = {system.stats.completed_moves}, "
            f"crashed = {crashed}"
        )
        assert configuration.is_connected

    tails = system.tails()
    glyphs = {tails[i]: "#" for i in injector.crashed_ids}
    print("\nFinal configuration ('#' marks crashed particles):\n")
    print(render_ascii(system.configuration, glyphs=glyphs))


if __name__ == "__main__":
    main()
