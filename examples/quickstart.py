"""Quickstart: compress a line of particles and watch the perimeter drop.

Run with::

    python examples/quickstart.py [n] [lambda] [iterations]

This is the smallest end-to-end use of the library: build the paper's
standard starting configuration (a line of ``n`` particles), run the
compression Markov chain with bias ``lambda`` on the fast engine, and
print the perimeter trajectory plus an ASCII picture of the final
configuration.  The whole script finishes in a couple of seconds; swap
``engine="fast"`` for ``engine="reference"`` to step through the same
trajectory (bit-identical for equal seeds) on the transparent engine.
"""

from __future__ import annotations

import sys
import time

from repro import CompressionSimulation
from repro.analysis.bounds import alpha_for_lambda
from repro.constants import COMPRESSION_THRESHOLD
from repro.viz.ascii_art import render_ascii, render_trace_sparkline


def main(n: int = 60, lam: float = 4.0, iterations: int = 300_000) -> None:
    print(f"Compressing {n} particles with lambda={lam} for {iterations} iterations (fast engine)")
    if lam > COMPRESSION_THRESHOLD:
        print(
            f"  lambda > 2+sqrt(2): Corollary 4.6 guarantees alpha-compression for any "
            f"alpha > {alpha_for_lambda(lam):.2f} at stationarity"
        )
    started = time.perf_counter()
    simulation = CompressionSimulation.from_line(n, lam=lam, seed=0, engine="fast")
    simulation.run(iterations, record_every=max(1, iterations // 40))
    elapsed = time.perf_counter() - started

    trace = simulation.trace
    print(f"\n  perimeter trace: {render_trace_sparkline(trace.perimeters())}")
    print(f"  start perimeter : {trace.points[0].perimeter} (pmax = {simulation.max_possible_perimeter})")
    print(f"  final perimeter : {trace.final().perimeter} (pmin = {simulation.min_possible_perimeter})")
    print(f"  achieved alpha  : {simulation.compression_ratio():.2f}")
    print(f"  move acceptance : {simulation.chain.accepted_moves / simulation.chain.iterations:.3f}")
    print(f"  wall time       : {elapsed:.2f}s ({iterations / elapsed:,.0f} iterations/s)")
    print("\nFinal configuration:\n")
    print(render_ascii(simulation.configuration))


if __name__ == "__main__":
    arguments = sys.argv[1:]
    n = int(arguments[0]) if len(arguments) > 0 else 60
    lam = float(arguments[1]) if len(arguments) > 1 else 4.0
    iterations = int(arguments[2]) if len(arguments) > 2 else 300_000
    main(n, lam, iterations)
